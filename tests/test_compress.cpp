// Unit and property tests for the compression stack: bitstreams, codecs
// (round-trip over adversarial and random data), and the compressed-memory
// simulation invariants.
#include <gtest/gtest.h>

#include "compress/bdi_codec.hpp"
#include "compress/dictionary_codec.hpp"
#include "compress/diff_codec.hpp"
#include "compress/memsys.hpp"
#include "compress/platform.hpp"
#include "compress/zero_run.hpp"
#include "sim/kernels.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "trace/synthetic.hpp"

namespace memopt {
namespace {

// ------------------------------------------------------------ bitstream ----

TEST(BitStream, RoundTripBits) {
    BitWriter w;
    w.put_bit(true);
    w.put_bit(false);
    w.put_bits(0b1011, 4);
    w.put_bits(0xDEADBEEF, 32);
    EXPECT_EQ(w.bit_count(), 38u);
    BitReader r(w.bytes());
    EXPECT_TRUE(r.get_bit());
    EXPECT_FALSE(r.get_bit());
    EXPECT_EQ(r.get_bits(4), 0b1011u);
    EXPECT_EQ(r.get_bits(32), 0xDEADBEEFu);
}

TEST(BitStream, ReadPastEndThrows) {
    BitWriter w;
    w.put_bits(0x3, 2);
    BitReader r(w.bytes());
    r.get_bits(2);
    // The writer produced one byte, so 6 padding bits remain, then EOF.
    r.get_bits(6);
    EXPECT_THROW(r.get_bit(), Error);
}

TEST(LineWords, RoundTrip) {
    const std::vector<std::uint8_t> line{1, 2, 3, 4, 5, 6, 7, 8};
    const auto words = line_words(line);
    ASSERT_EQ(words.size(), 2u);
    EXPECT_EQ(words[0], 0x04030201u);
    EXPECT_EQ(words_to_line(words), line);
    EXPECT_THROW(line_words(std::vector<std::uint8_t>{1, 2, 3}), Error);
}

// --------------------------------------------------------------- codecs ----

std::vector<std::uint8_t> make_line(const std::vector<std::uint32_t>& words) {
    return words_to_line(words);
}

struct CodecCase {
    std::string name;
    std::vector<std::uint8_t> line;
};

std::vector<CodecCase> codec_cases() {
    Rng rng(1234);
    std::vector<CodecCase> cases;
    cases.push_back({"all_zero", std::vector<std::uint8_t>(32, 0)});
    cases.push_back({"all_ff", std::vector<std::uint8_t>(32, 0xFF)});
    cases.push_back({"constant_words", make_line(std::vector<std::uint32_t>(8, 0xCAFEBABE))});
    {
        std::vector<std::uint32_t> counter;
        for (std::uint32_t i = 0; i < 8; ++i) counter.push_back(0x10000000 + i * 4);
        cases.push_back({"pointer_sequence", make_line(counter)});
    }
    {
        std::vector<std::uint32_t> rnd;
        for (int i = 0; i < 8; ++i) rnd.push_back(static_cast<std::uint32_t>(rng.next_u64()));
        cases.push_back({"random", make_line(rnd)});
    }
    cases.push_back({"smooth", make_line(smooth_word_stream(8, 1.0, 50, 7))});
    {
        std::vector<std::uint8_t> text;
        for (int i = 0; i < 32; ++i) text.push_back(static_cast<std::uint8_t>(i % 4));
        cases.push_back({"small_alphabet_bytes", text});
    }
    {
        // Adversarial: alternating extremes, defeats both diff modes.
        std::vector<std::uint32_t> alt;
        for (int i = 0; i < 8; ++i) alt.push_back(i % 2 ? 0xFFFFFFFF : 0x0);
        cases.push_back({"alternating_extremes", make_line(alt)});
    }
    cases.push_back({"short_line_16B", make_line(smooth_word_stream(4, 1.0, 10, 8))});
    {
        std::vector<std::uint32_t> rnd;
        for (int i = 0; i < 16; ++i) rnd.push_back(static_cast<std::uint32_t>(rng.next_u64()));
        cases.push_back({"long_line_64B", make_line(rnd)});
    }
    return cases;
}

class CodecRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodecRoundTrip, DiffCodecLossless) {
    const CodecCase c = codec_cases()[GetParam()];
    const DiffCodec codec;
    const BitWriter coded = codec.encode(c.line);
    EXPECT_EQ(codec.decode(coded.bytes(), c.line.size()), c.line) << c.name;
    // Never expands beyond raw + 2 mode bits.
    EXPECT_LE(coded.bit_count(), c.line.size() * 8 + 2) << c.name;
    EXPECT_EQ(codec.compressed_bits(c.line), coded.bit_count());
}

TEST_P(CodecRoundTrip, ZeroRunCodecLossless) {
    const CodecCase c = codec_cases()[GetParam()];
    const ZeroRunCodec codec;
    const BitWriter coded = codec.encode(c.line);
    EXPECT_EQ(codec.decode(coded.bytes(), c.line.size()), c.line) << c.name;
    EXPECT_LE(coded.bit_count(), c.line.size() * 8 + 1) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Cases, CodecRoundTrip, ::testing::Range<std::size_t>(0, 10),
                         [](const auto& info) { return codec_cases()[info.param].name; });

TEST(DiffCodec, RandomizedRoundTripSweep) {
    const DiffCodec codec;
    Rng rng(99);
    for (int trial = 0; trial < 500; ++trial) {
        const std::size_t words = 4u << rng.next_below(3);  // 16/32/64-byte lines
        std::vector<std::uint32_t> line_words_vec;
        const double smooth = rng.next_double();
        std::uint32_t v = static_cast<std::uint32_t>(rng.next_u64());
        for (std::size_t w = 0; w < words; ++w) {
            if (rng.next_bool(smooth)) {
                v += static_cast<std::uint32_t>(rng.next_in(-300, 300));
            } else {
                v = static_cast<std::uint32_t>(rng.next_u64());
            }
            line_words_vec.push_back(v);
        }
        const auto line = make_line(line_words_vec);
        EXPECT_EQ(codec.decode(codec.encode(line).bytes(), line.size()), line);
    }
}

TEST(DiffCodec, CompressesWhatItShould) {
    const DiffCodec codec;
    // Pointer runs compress to well under half.
    std::vector<std::uint32_t> ptrs;
    for (std::uint32_t i = 0; i < 8; ++i) ptrs.push_back(0x20000000 + i * 16);
    EXPECT_LT(codec.compressed_bits(make_line(ptrs)), 128u);
    // Small-alphabet bytes pick the byte mode: 2+8 header bits plus 31
    // nibble-tagged deltas (6 bits each) = 196 bits, well below raw.
    std::vector<std::uint8_t> text(32);
    for (std::size_t i = 0; i < text.size(); ++i) text[i] = i % 3;
    EXPECT_EQ(codec.compressed_bits(text), 196u);
    // Random data stays essentially raw.
    Rng rng(5);
    std::vector<std::uint32_t> rnd;
    for (int i = 0; i < 8; ++i) rnd.push_back(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_GE(codec.compressed_bits(make_line(rnd)), 256u);
}

TEST(ZeroRunCodec, ZeroLinesCollapse) {
    const ZeroRunCodec codec;
    const std::vector<std::uint8_t> zeros(32, 0);
    EXPECT_EQ(codec.compressed_bits(zeros), 9u);  // mode bit + 8 flags
}

TEST(Codecs, RejectMalformedInput) {
    const DiffCodec codec;
    EXPECT_THROW(codec.encode({}), Error);
    EXPECT_THROW(codec.decode({}, 0), Error);
    EXPECT_THROW(codec.decode({}, 6), Error);  // not a multiple of 4
}

// ----------------------------------------------------- extension codecs ----

TEST_P(CodecRoundTrip, BdiCodecLossless) {
    const CodecCase c = codec_cases()[GetParam()];
    const BdiCodec codec;
    const BitWriter coded = codec.encode(c.line);
    EXPECT_EQ(codec.decode(coded.bytes(), c.line.size()), c.line) << c.name;
    EXPECT_LE(coded.bit_count(), c.line.size() * 8 + 3) << c.name;
}

TEST_P(CodecRoundTrip, DictionaryCodecLossless) {
    const CodecCase c = codec_cases()[GetParam()];
    // Train on the line's own words plus noise: worst and best case both
    // remain lossless.
    const auto words = line_words(c.line);
    const DictionaryCodec codec = DictionaryCodec::train(words, 8);
    const BitWriter coded = codec.encode(c.line);
    EXPECT_EQ(codec.decode(coded.bytes(), c.line.size()), c.line) << c.name;
    EXPECT_LE(coded.bit_count(), c.line.size() * 8 + 1) << c.name;
}

TEST(BdiCodec, ModeSelection) {
    const BdiCodec codec;
    EXPECT_EQ(codec.compressed_bits(std::vector<std::uint8_t>(32, 0)), 3u);  // zero line
    const auto repeated = make_line(std::vector<std::uint32_t>(8, 0xCAFEBABE));
    EXPECT_EQ(codec.compressed_bits(repeated), 35u);  // mode + base
    std::vector<std::uint32_t> near_base;
    for (std::uint32_t i = 0; i < 8; ++i) near_base.push_back(0x10000000 + i);
    EXPECT_EQ(codec.compressed_bits(make_line(near_base)), 3u + 32u + 7u * 8u);
}

TEST(BdiCodec, OutlierForcesWideDeltas) {
    // One outlier word defeats BDI but not the per-word-tagged DiffCodec.
    std::vector<std::uint32_t> words;
    for (std::uint32_t i = 0; i < 7; ++i) words.push_back(0x1000 + i);
    words.push_back(0xF0000000);
    const auto line = make_line(words);
    const BdiCodec bdi;
    const DiffCodec diff;
    EXPECT_LT(diff.compressed_bits(line), bdi.compressed_bits(line));
}

TEST(DictionaryCodec, TrainingPicksFrequentValues) {
    std::vector<std::uint32_t> stream;
    for (int i = 0; i < 100; ++i) stream.push_back(0xAAAA);
    for (int i = 0; i < 50; ++i) stream.push_back(0xBBBB);
    stream.push_back(0xCCCC);
    const DictionaryCodec codec = DictionaryCodec::train(stream, 2);
    EXPECT_EQ(codec.dictionary()[0], 0xAAAAu);
    EXPECT_EQ(codec.dictionary()[1], 0xBBBBu);
    EXPECT_EQ(codec.index_bits(), 1u);
}

TEST(DictionaryCodec, TrainsFromTraceWrites) {
    MemTrace trace;
    for (int i = 0; i < 20; ++i)
        trace.add(MemAccess{.addr = 0, .cycle = 0, .value = 0x1234, .size = 4,
                            .kind = AccessKind::Write});
    // Reads must not contribute.
    for (int i = 0; i < 100; ++i)
        trace.add(MemAccess{.addr = 0, .cycle = 0, .value = 0x9999, .size = 4,
                            .kind = AccessKind::Read});
    const DictionaryCodec codec = DictionaryCodec::train(trace, 2);
    EXPECT_EQ(codec.dictionary()[0], 0x1234u);
}

TEST(DictionaryCodec, DictionaryHitsCompress) {
    const std::vector<std::uint32_t> dict_words{0x11, 0x22, 0x33, 0x44};
    const DictionaryCodec codec{std::vector<std::uint32_t>(dict_words)};
    const auto line = make_line({0x11, 0x22, 0x11, 0x44, 0x33, 0x11, 0x22, 0x44});
    // All 8 words hit: 1 + 8 * (1 + 2) = 25 bits.
    EXPECT_EQ(codec.compressed_bits(line), 25u);
}

TEST(DictionaryCodec, ValidatesDictionary) {
    EXPECT_THROW(DictionaryCodec(std::vector<std::uint32_t>{}), Error);
    EXPECT_THROW(DictionaryCodec(std::vector<std::uint32_t>{1, 2, 3}), Error);  // not pow2
    EXPECT_THROW(DictionaryCodec(std::vector<std::uint32_t>{1, 1}), Error);     // dup
    EXPECT_THROW(DictionaryCodec::train(std::span<const std::uint32_t>{}, 3), Error);
}

TEST(DictionaryCodec, PadsSmallTrainingSets) {
    const std::vector<std::uint32_t> tiny{0x7};
    const DictionaryCodec codec = DictionaryCodec::train(tiny, 8);
    EXPECT_EQ(codec.dictionary().size(), 8u);
    EXPECT_EQ(codec.dictionary()[0], 0x7u);
}

// --------------------------------------------------------------- memsys ----

MemTrace kernel_trace(const std::string& name, AssembledProgram& prog_out) {
    prog_out = assemble(kernel_by_name(name).source);
    return Cpu(CpuConfig{}).run(prog_out).data_trace;
}

TEST(Memsys, BaselineMovesRawTraffic) {
    AssembledProgram prog;
    const MemTrace trace = kernel_trace("histogram", prog);
    CompressedMemorySim sim(vliw_platform().config, nullptr);
    const auto report = sim.run(trace, prog.data, prog.data_base);
    EXPECT_EQ(report.raw_traffic_bytes, report.actual_traffic_bytes);
    EXPECT_DOUBLE_EQ(report.traffic_ratio(), 1.0);
    EXPECT_DOUBLE_EQ(report.energy.component("codec"), 0.0);
    EXPECT_GT(report.energy.total(), 0.0);
}

TEST(Memsys, CompressionNeverIncreasesTraffic) {
    const DiffCodec codec;
    for (const char* name : {"histogram", "biquad", "listchase", "qsort"}) {
        AssembledProgram prog;
        const MemTrace trace = kernel_trace(name, prog);
        const auto base =
            CompressedMemorySim(vliw_platform().config, nullptr).run(trace, prog.data, prog.data_base);
        const auto comp =
            CompressedMemorySim(vliw_platform().config, &codec).run(trace, prog.data, prog.data_base);
        EXPECT_LE(comp.actual_traffic_bytes, base.actual_traffic_bytes) << name;
        // Geometry is codec-independent.
        EXPECT_EQ(comp.cache_stats.accesses(), base.cache_stats.accesses()) << name;
        EXPECT_EQ(comp.cache_stats.misses(), base.cache_stats.misses()) << name;
        EXPECT_EQ(comp.writeback_lines, base.writeback_lines) << name;
        EXPECT_EQ(comp.fill_lines, base.fill_lines) << name;
    }
}

TEST(Memsys, CompressibleWorkloadSavesMemoryEnergy) {
    const DiffCodec codec;
    AssembledProgram prog;
    const MemTrace trace = kernel_trace("listchase", prog);  // pointer-rich
    const auto base =
        CompressedMemorySim(vliw_platform().config, nullptr).run(trace, prog.data, prog.data_base);
    const auto comp =
        CompressedMemorySim(vliw_platform().config, &codec).run(trace, prog.data, prog.data_base);
    EXPECT_LT(comp.energy.component("main_memory"), base.energy.component("main_memory"));
    EXPECT_LT(comp.traffic_ratio(), 0.85);
}

TEST(Memsys, EndToEndRoundTripInvariantHoldsOnAllKernels) {
    // With verify_roundtrip on, every refill of a compressed line decodes
    // the stored blob and compares it byte-for-byte against the shadow —
    // the strongest system-level losslessness check. Runs all codecs over
    // every kernel.
    const DiffCodec diff;
    const BdiCodec bdi;
    CompressedMemConfig cfg = vliw_platform().config;
    cfg.verify_roundtrip = true;
    for (const Kernel& kernel : kernel_suite()) {
        AssembledProgram prog;
        const MemTrace trace = kernel_trace(kernel.name, prog);
        for (const LineCodec* codec : {static_cast<const LineCodec*>(&diff),
                                       static_cast<const LineCodec*>(&bdi)}) {
            EXPECT_NO_THROW(
                CompressedMemorySim(cfg, codec).run(trace, prog.data, prog.data_base))
                << kernel.name << " with " << codec->name();
        }
    }
}

TEST(Memsys, RequiresWriteBackCache) {
    CompressedMemConfig cfg = vliw_platform().config;
    cfg.cache.write_policy = WritePolicy::WriteThroughNoAllocate;
    EXPECT_THROW(CompressedMemorySim(cfg, nullptr), Error);
}

TEST(Memsys, EmptyTraceRejected) {
    CompressedMemorySim sim(vliw_platform().config, nullptr);
    EXPECT_THROW(sim.run(MemTrace{}, {}, 0), Error);
}

TEST(DictionaryCodec, TrainingInvariantUnderInsertOrder) {
    // Regression for the unordered value-frequency map in train(): the same
    // multiset of words presented in different stream orders populates the
    // map in different insert orders (and with different rehash points), but
    // the trained dictionary must be identical — ranking is a total order
    // (count desc, then word asc), so hash order must never reach the
    // truncation. The count distribution below puts the cut line inside a
    // large tie region to make any hash-order leak visible.
    std::vector<std::uint32_t> words;
    for (std::uint32_t v = 0; v < 300; ++v) {
        for (std::uint32_t c = 0; c <= v % 7; ++c) words.push_back(0x1000u + v);
    }
    const DictionaryCodec base = DictionaryCodec::train(words, 16);

    std::vector<std::uint32_t> shuffled = words;
    Rng rng(77);
    rng.shuffle(shuffled);
    const std::vector<std::uint32_t> reversed(words.rbegin(), words.rend());
    EXPECT_EQ(DictionaryCodec::train(shuffled, 16).dictionary(), base.dictionary());
    EXPECT_EQ(DictionaryCodec::train(reversed, 16).dictionary(), base.dictionary());
}

TEST(Platforms, HaveDistinctRealisticConfigs) {
    const PlatformModel vliw = vliw_platform();
    const PlatformModel risc = risc_platform();
    EXPECT_NE(vliw.config.cache.size_bytes, risc.config.cache.size_bytes);
    EXPECT_GT(vliw.config.cache.line_bytes, risc.config.cache.line_bytes);
    EXPECT_FALSE(vliw.description.empty());
    EXPECT_FALSE(risc.description.empty());
}

}  // namespace
}  // namespace memopt
