// memopt_lint self-tests: tokenizer behaviour, per-rule fixtures with
// expected-diagnostics golden files, annotation semantics, the suppression
// baseline, and the memopt.lint.v1 JSON report.
//
// The fixture sources live in tests/lint_fixtures/ (excluded from the real
// tree scan); each bad fixture has a `<name>.expected` golden holding the
// exact `file:line: rule: message` diagnostics the linter must emit for it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/assert.hpp"
#include "support/json.hpp"
#include "tools/lint/graph.hpp"
#include "tools/lint/index.hpp"
#include "tools/lint/lint.hpp"
#include "tools/lint/rules.hpp"
#include "tools/lint/tokenizer.hpp"

#ifndef MEMOPT_LINT_FIXTURES_DIR
#error "MEMOPT_LINT_FIXTURES_DIR must point at tests/lint_fixtures"
#endif

namespace memopt::lint {
namespace {

std::vector<std::string> lint_fixture(const std::string& file) {
    LintOptions options;
    options.root = MEMOPT_LINT_FIXTURES_DIR;
    options.paths = {file};
    const LintReport report = run_lint(options);
    std::vector<std::string> rendered;
    for (const Finding& f : report.findings) rendered.push_back(f.render());
    return rendered;
}

std::vector<std::string> read_lines(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) lines.push_back(line);
    }
    return lines;
}

/// Findings for an in-memory snippet linted as `path` in isolation.
std::vector<Finding> check_snippet(const std::string& path, const std::string& code) {
    const SourceFile sf = tokenize(path, code);
    std::vector<Finding> findings;
    check_file(sf, collect_unordered_members(sf), findings);
    return findings;
}

// ---------------------------------------------------------------------------
// Fixture goldens

class LintFixture : public ::testing::TestWithParam<const char*> {};

TEST_P(LintFixture, BadFixtureMatchesGolden) {
    const std::string name = GetParam();
    const std::vector<std::string> expected =
        read_lines(std::string(MEMOPT_LINT_FIXTURES_DIR) + "/" + name + ".expected");
    ASSERT_FALSE(expected.empty());
    const std::string ext = name[0] == 'h' ? ".hpp" : ".cpp";
    EXPECT_EQ(lint_fixture(name + ext), expected);
}

INSTANTIATE_TEST_SUITE_P(AllRules, LintFixture,
                         ::testing::Values("d1_bad", "d2_bad", "d3_bad", "d4_bad", "d5_bad",
                                           "r1_bad", "a1_bad", "h1_bad", "tok_edge_bad"));

class LintGoodFixture : public ::testing::TestWithParam<const char*> {};

TEST_P(LintGoodFixture, GoodFixtureIsClean) {
    EXPECT_EQ(lint_fixture(GetParam()), std::vector<std::string>{});
}

INSTANTIATE_TEST_SUITE_P(AllRules, LintGoodFixture,
                         ::testing::Values("d1_good.cpp", "d2_good.cpp", "d3_good.cpp",
                                           "d5_good.cpp", "r1_good.cpp", "a1_good.cpp",
                                           "h1_good.hpp", "h1_guard_good.hpp",
                                           "tok_edge_good.cpp"));

// ---------------------------------------------------------------------------
// Tokenizer

TEST(LintTokenizer, SkipsCommentsAndStringContents) {
    const SourceFile sf = tokenize("t.cpp",
                                   "int x = 1; // assert(rand())\n"
                                   "const char* s = \"assert(rand())\";\n"
                                   "/* assert( */ int y;\n");
    for (const Token& t : sf.tokens) {
        EXPECT_NE(t.text, "assert");
        EXPECT_NE(t.text, "rand");
    }
}

TEST(LintTokenizer, TracksLines) {
    const SourceFile sf = tokenize("t.cpp", "int a;\n\nint b;\n");
    ASSERT_GE(sf.tokens.size(), 6u);
    EXPECT_EQ(sf.tokens[0].line, 1);  // int
    EXPECT_EQ(sf.tokens[3].line, 3);  // int (second)
    EXPECT_EQ(sf.last_line, 4);
}

TEST(LintTokenizer, RawStringsAreOpaque) {
    const SourceFile sf = tokenize("t.cpp", "auto s = R\"(assert(rand()))\"; int z;\n");
    bool saw_z = false;
    for (const Token& t : sf.tokens) {
        EXPECT_NE(t.text, "assert");
        saw_z = saw_z || t.text == "z";
    }
    EXPECT_TRUE(saw_z);
}

TEST(LintTokenizer, DirectivesAreWholeLines) {
    const SourceFile sf =
        tokenize("t.hpp", "#pragma once\n#define ADD(a, b) \\\n    ((a) + (b))\nint x;\n");
    ASSERT_GE(sf.tokens.size(), 2u);
    EXPECT_EQ(sf.tokens[0].kind, TokKind::PPDirective);
    EXPECT_EQ(sf.tokens[0].text, "#pragma once");
    EXPECT_EQ(sf.tokens[1].kind, TokKind::PPDirective);
    EXPECT_EQ(sf.tokens[1].line, 2);  // continuation folded into one token
    EXPECT_EQ(sf.tokens[2].text, "int");
    EXPECT_EQ(sf.tokens[2].line, 4);
}

TEST(LintTokenizer, AnnotationsCoverOwnLineAndNextCodeLine) {
    const SourceFile sf = tokenize("t.cpp",
                                   "// memopt-lint: order-independent -- multi-line\n"
                                   "// rationale continues without the tag\n"
                                   "int b;\n"
                                   "int a;  // memopt-lint: D1 -- trailing rationale\n");
    EXPECT_TRUE(sf.annotated(1, "order-independent"));
    EXPECT_TRUE(sf.annotated(2, "order-independent"));  // line below the tag
    EXPECT_TRUE(sf.annotated(3, "order-independent"));  // first code line after
    EXPECT_FALSE(sf.annotated(3, "D1"));
    EXPECT_TRUE(sf.annotated(4, "D1"));  // trailing annotation, own line
    // The `--` separator keeps the rationale out of the annotation words.
    EXPECT_FALSE(sf.annotated(4, "trailing"));
}

// ---------------------------------------------------------------------------
// Rules on in-memory snippets

TEST(LintRules, D1CrossFileMemberRecognition) {
    // Member declared in a header, iterated in a .cpp: the cpp alone has no
    // unordered declaration, so the cross-file member set must carry it.
    const SourceFile hpp = tokenize(
        "m.hpp", "#pragma once\n#include <unordered_map>\n"
                 "struct A { std::unordered_map<int, int> pairs_; };\n");
    const std::set<std::string> members = collect_unordered_members(hpp);
    EXPECT_EQ(members.count("pairs_"), 1u);

    const std::string cpp = "void A::walk() { for (const auto& [k, v] : pairs_) use(k, v); }\n";
    std::vector<Finding> findings;
    check_file(tokenize("m.cpp", cpp), members, findings);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "D1");

    findings.clear();
    check_file(tokenize("m.cpp", cpp), {}, findings);  // without the union: missed
    EXPECT_TRUE(findings.empty());
}

TEST(LintRules, D1AnnotationByRuleIdAlsoSuppresses) {
    const auto findings = check_snippet(
        "t.cpp",
        "#include <unordered_map>\n"
        "int f() {\n"
        "    std::unordered_map<int, int> m;\n"
        "    int s = 0;\n"
        "    for (const auto& [k, v] : m) s += k + v;  // memopt-lint: D1 -- exact sums\n"
        "    return s;\n"
        "}\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintRules, D2ExemptInsideSupportRng) {
    const std::string code = "unsigned s() { return static_cast<unsigned>(time(nullptr)); }\n";
    EXPECT_TRUE(check_snippet("src/support/rng_host_entropy.cpp", code).empty());
    EXPECT_EQ(check_snippet("src/sched/scheduler.cpp", code).size(), 1u);
}

TEST(LintRules, D3ShardLocalPartialIsClean) {
    const auto findings = check_snippet(
        "t.cpp",
        "void parallel_for(unsigned long, int);\n"
        "double f(const double* v) {\n"
        "    double out = 0.0;\n"
        "    parallel_for(8, [&](unsigned long i) { double p = 0.0; p += v[i]; use(p); });\n"
        "    return out;\n"
        "}\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintRules, R1ExemptInsideDurableLayerAndTests) {
    const std::string code = "void f(const char* p) { std::ofstream os(p); }\n";
    EXPECT_TRUE(check_snippet("src/support/durable/atomic_file.cpp", code).empty());
    EXPECT_TRUE(check_snippet("tests/test_scratch.cpp", code).empty());
    const auto findings = check_snippet("src/trace/io.cpp", code);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "R1");
}

TEST(LintRules, R1IgnoresMemberCallsAndReads) {
    const auto findings = check_snippet("src/x.cpp",
                                        "void f(Io& io, const char* p) {\n"
                                        "    io.fopen(p);\n"
                                        "    std::ifstream in(p);\n"
                                        "}\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintRules, A1IgnoresMemberAndDistinctIdentifiers) {
    const auto findings = check_snippet("t.cpp",
                                        "void f(Checker& c) {\n"
                                        "    c.assert(true);\n"
                                        "    static_assert(1 + 1 == 2);\n"
                                        "    my_assert(true);\n"
                                        "}\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintRules, H1OnlyAppliesToHeaders) {
    const std::string code = "using namespace std;\nint x;\n";
    EXPECT_TRUE(check_snippet("t.cpp", code).empty());
    const auto findings = check_snippet("t.hpp", code);
    ASSERT_EQ(findings.size(), 2u);  // missing guard + using namespace
    EXPECT_EQ(findings[0].rule, "H1");
    EXPECT_EQ(findings[1].rule, "H1");
}

// ---------------------------------------------------------------------------
// Baseline

TEST(LintBaseline, ParsesEntriesCommentsAndBlanks) {
    std::istringstream in(
        "# comment\n"
        "\n"
        "src/a.cpp:12:D1\n"
        "src/b.hpp:1:H1   # trailing comment\n");
    const auto entries = parse_baseline(in, "test");
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].file, "src/a.cpp");
    EXPECT_EQ(entries[0].line, 12);
    EXPECT_EQ(entries[0].rule, "D1");
    EXPECT_EQ(entries[1].file, "src/b.hpp");
    EXPECT_EQ(entries[1].rule, "H1");
}

TEST(LintBaseline, RejectsMalformedEntries) {
    std::istringstream bad1("not-an-entry\n");
    EXPECT_THROW(parse_baseline(bad1, "test"), Error);
    std::istringstream bad2("file:notaline:D1\n");
    EXPECT_THROW(parse_baseline(bad2, "test"), Error);
}

TEST(LintBaseline, SuppressesMatchedAndReportsStale) {
    // Baseline with one matching entry (d2_bad.cpp:7:D2), one stale.
    const std::string path = ::testing::TempDir() + "/lint_baseline_test.txt";
    {
        std::ofstream out(path);
        out << "d2_bad.cpp:7:D2\n";
        out << "d2_bad.cpp:999:D2  # stale\n";
    }
    LintOptions options;
    options.root = MEMOPT_LINT_FIXTURES_DIR;
    options.paths = {"d2_bad.cpp"};
    options.baseline_path = path;
    const LintReport report = run_lint(options);
    std::remove(path.c_str());

    EXPECT_EQ(report.findings.size(), 4u);
    EXPECT_EQ(report.baselined_count(), 1u);
    EXPECT_EQ(report.active_count(), 3u);
    ASSERT_EQ(report.stale_baseline.size(), 1u);
    EXPECT_EQ(report.stale_baseline[0], "d2_bad.cpp:999:D2");
    for (const Finding& f : report.findings) {
        EXPECT_EQ(f.baselined, f.line == 7) << f.render();
    }
}

// ---------------------------------------------------------------------------
// Driver & JSON report

TEST(LintDriver, ThrowsOnMissingPathAndBadRoot) {
    LintOptions missing;
    missing.root = MEMOPT_LINT_FIXTURES_DIR;
    missing.paths = {"no_such_file.cpp"};
    EXPECT_THROW(run_lint(missing), Error);

    LintOptions bad_root;
    bad_root.root = std::string(MEMOPT_LINT_FIXTURES_DIR) + "/d1_bad.cpp";
    EXPECT_THROW(run_lint(bad_root), Error);
}

TEST(LintDriver, ScanIsDeterministic) {
    LintOptions options;
    options.root = MEMOPT_LINT_FIXTURES_DIR;
    options.paths = {"."};
    const LintReport a = run_lint(options);
    const LintReport b = run_lint(options);
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        EXPECT_EQ(a.findings[i].render(), b.findings[i].render());
    }
    // All bad fixtures, none suppressed: the per-file goldens (d1 2, d2 4,
    // d3 1, d4 3, d5 3, r1 2, a1 1, h1 2, tok_edge 1) plus the cross-file
    // pairs only the full scan can see (i1 1, l2 1).
    EXPECT_EQ(a.active_count(), 21u);
}

TEST(LintJson, ReportIsCompleteAndCarriesSchema) {
    LintOptions options;
    options.root = MEMOPT_LINT_FIXTURES_DIR;
    options.paths = {"d4_bad.cpp"};
    const LintReport report = run_lint(options);

    std::ostringstream os;
    JsonWriter w(os);
    write_json(w, options, report);
    EXPECT_TRUE(w.complete());
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"schema\": \"memopt.lint.v1\""), std::string::npos);
    EXPECT_NE(doc.find("\"rule\": \"D4\""), std::string::npos);
    EXPECT_NE(doc.find("\"files_scanned\": 1"), std::string::npos);
    // One entry per rule in the catalogue.
    for (const RuleInfo& r : rule_catalogue()) {
        EXPECT_NE(doc.find("\"id\": \"" + std::string(r.id) + "\""), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Tokenizer edge cases (the tok_edge_* fixtures cover the same ground
// end-to-end; these pin the token-level behaviour)

TEST(LintTokenizer, SkipsUtf8Bom) {
    const SourceFile sf = tokenize("t.cpp", "\xEF\xBB\xBFint x;\n");
    ASSERT_GE(sf.tokens.size(), 2u);
    EXPECT_EQ(sf.tokens[0].text, "int");
    EXPECT_EQ(sf.tokens[0].line, 1);
}

TEST(LintTokenizer, BackslashContinuationInsideStringStaysOpaque) {
    const SourceFile sf = tokenize("t.cpp",
                                   "const char* s = \"rand() and \\\nsrand(1)\";\n"
                                   "int after;\n");
    bool saw_after = false;
    for (const Token& t : sf.tokens) {
        EXPECT_NE(t.text, "rand");
        EXPECT_NE(t.text, "srand");
        if (t.text == "after") {
            saw_after = true;
            EXPECT_EQ(t.line, 3);  // the continuation consumed a physical line
        }
    }
    EXPECT_TRUE(saw_after);
}

TEST(LintTokenizer, RawStringCustomDelimiterSwallowsQuoteParen) {
    // `)"` inside the literal must not terminate it: only `)x"` does.
    const SourceFile sf = tokenize("t.cpp", "auto s = R\"x(a )\" b rand())x\"; int z;\n");
    bool saw_z = false;
    for (const Token& t : sf.tokens) {
        EXPECT_NE(t.text, "rand");
        saw_z = saw_z || t.text == "z";
    }
    EXPECT_TRUE(saw_z);
}

// ---------------------------------------------------------------------------
// D5 on in-memory snippets

TEST(LintRules, D5FlagsCapturedCompoundAndIncrement) {
    const auto findings = check_snippet(
        "t.cpp",
        "void parallel_for(unsigned long, int);\n"
        "int f(const int* v) {\n"
        "    int hits = 0;\n"
        "    parallel_for(8, [&](unsigned long i) { if (v[i]) hits += 1; });\n"
        "    return hits;\n"
        "}\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "D5");
    EXPECT_EQ(findings[0].line, 4);
}

TEST(LintRules, D5ShardLocalAndGuardedAreClean) {
    EXPECT_TRUE(check_snippet("t.cpp",
                              "void parallel_for(unsigned long, int);\n"
                              "void f() {\n"
                              "    parallel_for(8, [](unsigned long i) {\n"
                              "        unsigned long local = 0;\n"
                              "        local += i;\n"
                              "    });\n"
                              "}\n")
                    .empty());
    EXPECT_TRUE(check_snippet("t.cpp",
                              "void parallel_for(unsigned long, int);\n"
                              "void f(long& shared) {\n"
                              "    long shared_copy = shared;\n"
                              "    parallel_for(8, [&](unsigned long i) {\n"
                              "        // memopt-lint: guarded -- g_mutex held by caller\n"
                              "        shared_copy += static_cast<long>(i);\n"
                              "    });\n"
                              "}\n")
                    .empty());
}

TEST(LintRules, D5LeavesFloatingPointCompoundToD3) {
    const auto findings = check_snippet(
        "t.cpp",
        "void parallel_for(unsigned long, int);\n"
        "double f(const double* v) {\n"
        "    double total = 0.0;\n"
        "    parallel_for(8, [&](unsigned long i) { total += v[i]; });\n"
        "    return total;\n"
        "}\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "D3");  // not double-reported as D5
}

// ---------------------------------------------------------------------------
// Semantic index (pass 1)

TEST(LintIndex, Fnv1a64MatchesReferenceVectors) {
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(LintIndex, BuildFileIndexExtractsFacts) {
    const std::string code =
        "#pragma once\n"
        "#include \"support/json.hpp\"\n"
        "#include <unordered_map>\n"
        "#include \"cache/bank.hpp\"  // memopt-lint: keep-include -- odr anchor\n"
        "struct Foo {\n"
        "    std::unordered_map<int, int> stats_;\n"
        "};\n"
        "inline void dump(memopt::JsonWriter& w) {\n"
        "    w.member(\"alpha\", 1);\n"
        "    w.key(\"beta\");\n"
        "}\n";
    const SourceFile sf = tokenize("src/cache/foo.hpp", code);
    const FileIndex index = build_file_index(sf, fnv1a64(code));

    EXPECT_EQ(index.path, "src/cache/foo.hpp");
    EXPECT_TRUE(index.is_header);
    EXPECT_EQ(index.content_hash, fnv1a64(code));

    ASSERT_EQ(index.includes.size(), 3u);
    EXPECT_EQ(index.includes[0].target, "support/json.hpp");
    EXPECT_FALSE(index.includes[0].system);
    EXPECT_FALSE(index.includes[0].keep_annotated);
    EXPECT_EQ(index.includes[1].target, "unordered_map");
    EXPECT_TRUE(index.includes[1].system);
    EXPECT_EQ(index.includes[2].target, "cache/bank.hpp");
    EXPECT_TRUE(index.includes[2].keep_annotated);

    const auto& declared = index.declared_symbols;
    EXPECT_NE(std::find(declared.begin(), declared.end(), "Foo"), declared.end());
    EXPECT_NE(std::find(declared.begin(), declared.end(), "dump"), declared.end());

    ASSERT_EQ(index.unordered_members.size(), 1u);
    EXPECT_EQ(index.unordered_members[0], "stats_");

    ASSERT_EQ(index.json_keys.size(), 2u);
    EXPECT_EQ(index.json_keys[0].key, "alpha");
    EXPECT_EQ(index.json_keys[0].line, 9);
    EXPECT_EQ(index.json_keys[1].key, "beta");
    EXPECT_EQ(index.json_keys[1].line, 10);
}

// ---------------------------------------------------------------------------
// Incremental cache

std::vector<FileIndex> sample_indexes() {
    const std::string code_a =
        "#include \"b.hpp\"\nint use_b() { return helper_b(); }  // rand in \"str\"\n";
    const std::string code_b = "#pragma once\nint helper_b();\n";
    std::vector<FileIndex> indexes;
    indexes.push_back(build_file_index(tokenize("a.cpp", code_a), fnv1a64(code_a)));
    indexes.push_back(build_file_index(tokenize("b.hpp", code_b), fnv1a64(code_b)));
    return indexes;
}

TEST(LintCache, SerializeParseRoundTrip) {
    const std::vector<FileIndex> indexes = sample_indexes();
    const std::string doc = serialize_cache("stamp-1", indexes);
    const std::map<std::string, FileIndex> parsed = parse_cache(doc, "stamp-1");

    ASSERT_EQ(parsed.size(), indexes.size());
    for (const FileIndex& original : indexes) {
        const auto it = parsed.find(original.path);
        ASSERT_NE(it, parsed.end()) << original.path;
        const FileIndex& round = it->second;
        EXPECT_EQ(round.content_hash, original.content_hash);
        EXPECT_EQ(round.is_header, original.is_header);
        EXPECT_EQ(round.declared_symbols, original.declared_symbols);
        EXPECT_EQ(round.used_identifiers, original.used_identifiers);
        ASSERT_EQ(round.includes.size(), original.includes.size());
        for (std::size_t i = 0; i < round.includes.size(); ++i) {
            EXPECT_EQ(round.includes[i].target, original.includes[i].target);
            EXPECT_EQ(round.includes[i].system, original.includes[i].system);
        }
        ASSERT_EQ(round.local_findings.size(), original.local_findings.size());
        for (std::size_t i = 0; i < round.local_findings.size(); ++i) {
            EXPECT_EQ(round.local_findings[i].render(), original.local_findings[i].render());
        }
    }
}

TEST(LintCache, EngineStampMismatchIsFullMiss) {
    const std::string doc = serialize_cache("stamp-1", sample_indexes());
    EXPECT_TRUE(parse_cache(doc, "stamp-2").empty());
}

TEST(LintCache, MalformedDocumentIsFullMiss) {
    const std::string doc = serialize_cache("stamp-1", sample_indexes());
    EXPECT_TRUE(parse_cache("", "stamp-1").empty());
    EXPECT_TRUE(parse_cache("not a cache\n", "stamp-1").empty());
    EXPECT_TRUE(parse_cache(doc + "garbage-tag trailing\n", "stamp-1").empty());
}

TEST(LintCache, WarmRunHitsAndContentChangeInvalidates) {
    namespace fs = std::filesystem;
    const fs::path root = fs::path(::testing::TempDir()) / "memopt_lint_cache_test";
    fs::remove_all(root);
    fs::create_directories(root);
    const auto write_src = [&](const char* name, const std::string& body) {
        std::ofstream out(root / name);
        out << body;
    };
    write_src("a.cpp", "int a() { return 1; }\n");
    write_src("b.cpp", "int b() { return 2; }\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"."};
    options.cache_path = (root / "lint.cache").string();

    const LintReport cold = run_lint(options);
    EXPECT_EQ(cold.files_scanned, 2u);
    EXPECT_EQ(cold.files_from_cache, 0u);
    EXPECT_TRUE(cold.findings.empty());

    const LintReport warm = run_lint(options);
    EXPECT_EQ(warm.files_from_cache, 2u);

    // Content change: only the edited file re-indexes, and its new finding
    // surfaces even though b.cpp came from the cache.
    write_src("a.cpp", "int a() { return rand(); }\n");
    const LintReport edited = run_lint(options);
    EXPECT_EQ(edited.files_from_cache, 1u);
    ASSERT_EQ(edited.findings.size(), 1u);
    EXPECT_EQ(edited.findings[0].rule, "D2");
    EXPECT_EQ(edited.findings[0].file, "a.cpp");

    fs::remove_all(root);
}

// ---------------------------------------------------------------------------
// Include graph, layering, cycles (pass 2 on synthetic indexes)

FileIndex synthetic_index(const std::string& path,
                          const std::vector<std::string>& include_targets) {
    FileIndex index;
    index.path = path;
    index.is_header = path.ends_with(".hpp");
    for (const std::string& target : include_targets) {
        IncludeSite site;
        site.target = target;
        site.line = 1;
        index.includes.push_back(site);
    }
    return index;
}

TEST(LintGraph, ResolvesProjectRootAndRelativeIncludes) {
    std::map<std::string, FileIndex> indexes;
    indexes["src/cache/bank.cpp"] =
        synthetic_index("src/cache/bank.cpp", {"cache/bank.hpp", "util.hpp", "no/such.hpp"});
    indexes["src/cache/bank.hpp"] = synthetic_index("src/cache/bank.hpp", {});
    indexes["src/cache/util.hpp"] = synthetic_index("src/cache/util.hpp", {});

    const IncludeGraph graph = build_include_graph(indexes);
    const auto& resolved = graph.resolved.at("src/cache/bank.cpp");
    ASSERT_EQ(resolved.size(), 2u);  // no/such.hpp does not resolve
    EXPECT_EQ(resolved.at(0), "src/cache/bank.hpp");  // via the src/ include root
    EXPECT_EQ(resolved.at(1), "src/cache/util.hpp");  // via dirname(F)/T
}

TEST(LintGraph, FindsCyclesAndSelfLoops) {
    std::map<std::string, FileIndex> indexes;
    indexes["a.hpp"] = synthetic_index("a.hpp", {"b.hpp"});
    indexes["b.hpp"] = synthetic_index("b.hpp", {"c.hpp"});
    indexes["c.hpp"] = synthetic_index("c.hpp", {"a.hpp"});
    indexes["d.hpp"] = synthetic_index("d.hpp", {"d.hpp"});
    indexes["e.hpp"] = synthetic_index("e.hpp", {"a.hpp"});  // feeds, not in cycle

    const std::vector<std::vector<std::string>> cycles =
        include_cycles(build_include_graph(indexes));
    ASSERT_EQ(cycles.size(), 2u);
    EXPECT_EQ(cycles[0], (std::vector<std::string>{"a.hpp", "b.hpp", "c.hpp"}));
    EXPECT_EQ(cycles[1], (std::vector<std::string>{"d.hpp"}));
}

TEST(LintGraph, ModuleOfUsesSecondComponentUnderSrc) {
    EXPECT_EQ(module_of("src/cache/bank.hpp"), "cache");
    EXPECT_EQ(module_of("src/support/durable/atomic_file.cpp"), "support");
    EXPECT_EQ(module_of("tests/test_lint.cpp"), "tests");
    EXPECT_EQ(module_of("tools/memopt_lint.cpp"), "tools");
}

constexpr const char* kLayeringDoc =
    "# comment\n"
    "schema = \"memopt.layering.v1\"\n"
    "allow_same_layer = true\n"
    "[[layer]]\n"
    "rank = 0\n"
    "modules = [\"support\"]\n"
    "[[layer]]\n"
    "rank = 1\n"
    "modules = [\"cache\", \"trace\"]\n"
    "[[exception]]\n"
    "from = \"support\"\n"
    "to = \"trace\"\n"
    "reason = \"fixture back-edge\"\n";

TEST(LintGraph, ParsesLayeringDocument) {
    const LayeringConfig config = parse_layering(kLayeringDoc, "layering.toml");
    EXPECT_EQ(config.module_layers.at("support"), 0);
    EXPECT_EQ(config.module_layers.at("cache"), 1);
    EXPECT_EQ(config.module_layers.at("trace"), 1);
    EXPECT_TRUE(config.allow_same_layer);
    EXPECT_TRUE(config.exception_allows("support", "trace"));
    EXPECT_FALSE(config.exception_allows("support", "cache"));
}

TEST(LintGraph, RejectsMalformedLayering) {
    EXPECT_THROW(parse_layering("allow_same_layer = true\n", "t"), Error);  // no schema
    EXPECT_THROW(parse_layering("schema = \"memopt.layering.v2\"\n", "t"), Error);
    EXPECT_THROW(parse_layering("schema = \"memopt.layering.v1\"\n"
                                "[[layer]]\n"
                                "modules = [\"support\"]\n",  // missing rank
                                "t"),
                 Error);
    EXPECT_THROW(parse_layering("schema = \"memopt.layering.v1\"\n"
                                "[[layer]]\nrank = 0\nmodules = [\"support\"]\n"
                                "[[layer]]\nrank = 1\nmodules = [\"support\"]\n",  // duplicate
                                "t"),
                 Error);
    EXPECT_THROW(parse_layering("schema = \"memopt.layering.v1\"\n"
                                "[[exception]]\nfrom = \"a\"\nto = \"b\"\n",  // no reason
                                "t"),
                 Error);
}

TEST(LintGraph, LayeringBackEdgeFlaggedUnlessExcepted) {
    std::map<std::string, FileIndex> indexes;
    indexes["src/support/low.hpp"] =
        synthetic_index("src/support/low.hpp", {"cache/high.hpp", "trace/peer.hpp"});
    indexes["src/cache/high.hpp"] = synthetic_index("src/cache/high.hpp", {"support/low.hpp"});
    indexes["src/trace/peer.hpp"] = synthetic_index("src/trace/peer.hpp", {});
    const IncludeGraph graph = build_include_graph(indexes);
    const LayeringConfig config = parse_layering(kLayeringDoc, "layering.toml");

    std::vector<Finding> findings;
    resolve_layering(indexes, graph, config, findings);
    // support -> cache is a back-edge; support -> trace is excepted, and
    // cache -> support (downward) is the allowed direction.
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "L1");
    EXPECT_EQ(findings[0].file, "src/support/low.hpp");
    EXPECT_NE(findings[0].message.find("cache"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Schema goldens (S1)

constexpr const char* kGoldenDoc =
    "{\n"
    "  \"schema\": \"memopt.schema-freeze.v1\",\n"
    "  \"id\": \"memopt.test.v1\",\n"
    "  \"notes\": \"ignored free-text field\",\n"
    "  \"sources\": [\"src/core/emit.cpp\"],\n"
    "  \"keys\": [\"alpha\", \"beta\"]\n"
    "}\n";

TEST(LintSchema, ParsesGoldenDocument) {
    const SchemaGolden golden = parse_schema_golden(kGoldenDoc, "docs/schemas/test.json");
    EXPECT_EQ(golden.id, "memopt.test.v1");
    EXPECT_EQ(golden.sources, std::vector<std::string>{"src/core/emit.cpp"});
    EXPECT_EQ(golden.keys, (std::set<std::string>{"alpha", "beta"}));
}

TEST(LintSchema, RejectsMalformedGoldens) {
    EXPECT_THROW(parse_schema_golden("{]", "t"), Error);
    EXPECT_THROW(parse_schema_golden("{\"id\": \"x\"}", "t"), Error);  // wrong schema tag
    EXPECT_THROW(parse_json("{\"a\": 1} trailing", "t"), Error);
}

TEST(LintSchema, FlagsDriftInBothDirections) {
    const SchemaGolden golden = parse_schema_golden(kGoldenDoc, "docs/schemas/test.json");

    FileIndex emitter;
    emitter.path = "src/core/emit.cpp";
    emitter.json_keys = {{"alpha", 3}, {"gamma", 9}};  // gamma extra, beta gone
    std::map<std::string, FileIndex> indexes;
    indexes[emitter.path] = emitter;

    std::vector<Finding> findings;
    resolve_schemas(indexes, {golden}, findings);
    ASSERT_EQ(findings.size(), 2u);
    for (const Finding& f : findings) EXPECT_EQ(f.rule, "S1");
    // The extra key anchors on its emission line; the vanished key on the
    // golden document.
    EXPECT_EQ(findings[0].file, "src/core/emit.cpp");
    EXPECT_EQ(findings[0].line, 9);
    EXPECT_NE(findings[0].message.find("gamma"), std::string::npos);
    EXPECT_EQ(findings[1].file, "docs/schemas/test.json");
    EXPECT_NE(findings[1].message.find("beta"), std::string::npos);

    // In-sync emitter: clean.
    indexes[emitter.path].json_keys = {{"alpha", 3}, {"beta", 4}};
    findings.clear();
    resolve_schemas(indexes, {golden}, findings);
    EXPECT_TRUE(findings.empty());

    // A frozen source that was deleted is drift too.
    indexes.clear();
    findings.clear();
    resolve_schemas(indexes, {golden}, findings);
    ASSERT_GE(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "S1");
}

// ---------------------------------------------------------------------------
// Project rules end-to-end on the fixture tree

TEST(LintDriver, UnusedIncludeAcrossFiles) {
    LintOptions options;
    options.root = MEMOPT_LINT_FIXTURES_DIR;
    options.paths = {"i1_bad.cpp", "i1_used.hpp", "i1_util.hpp"};
    const LintReport report = run_lint(options);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "I1");
    EXPECT_EQ(report.findings[0].file, "i1_bad.cpp");
    EXPECT_EQ(report.findings[0].line, 4);
    EXPECT_NE(report.findings[0].message.find("i1_util.hpp"), std::string::npos);
}

TEST(LintDriver, IncludeCycleAnchorsOnSmallestMember) {
    LintOptions options;
    options.root = MEMOPT_LINT_FIXTURES_DIR;
    options.paths = {"l2_a.hpp", "l2_b.hpp"};
    const LintReport report = run_lint(options);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "L2");
    EXPECT_EQ(report.findings[0].file, "l2_a.hpp");
}

TEST(LintDriver, FindingsAreJobsInvariant) {
    LintOptions options;
    options.root = MEMOPT_LINT_FIXTURES_DIR;
    options.paths = {"."};

    options.jobs = 1;
    const LintReport serial = run_lint(options);
    options.jobs = 8;
    const LintReport parallel = run_lint(options);

    EXPECT_EQ(serial.files_scanned, parallel.files_scanned);
    ASSERT_EQ(serial.findings.size(), parallel.findings.size());
    for (std::size_t i = 0; i < serial.findings.size(); ++i) {
        EXPECT_EQ(serial.findings[i].render(), parallel.findings[i].render());
    }

    std::ostringstream doc_serial, doc_parallel;
    {
        JsonWriter w(doc_serial);
        write_json(w, options, serial);
    }
    {
        JsonWriter w(doc_parallel);
        write_json(w, options, parallel);
    }
    EXPECT_EQ(doc_serial.str(), doc_parallel.str());  // bit-identical documents
}

// ---------------------------------------------------------------------------
// SARIF output

TEST(LintSarif, DocumentIsWellFormedAndCarriesSuppressions) {
    const std::string baseline = ::testing::TempDir() + "/lint_sarif_baseline.txt";
    {
        std::ofstream out(baseline);
        out << "d2_bad.cpp:7:D2\n";
    }
    LintOptions options;
    options.root = MEMOPT_LINT_FIXTURES_DIR;
    options.paths = {"d2_bad.cpp"};
    options.baseline_path = baseline;
    const LintReport report = run_lint(options);
    std::remove(baseline.c_str());
    ASSERT_EQ(report.findings.size(), 4u);
    ASSERT_EQ(report.baselined_count(), 1u);

    std::ostringstream os;
    JsonWriter w(os);
    write_sarif(w, options, report);
    EXPECT_TRUE(w.complete());

    const JsonValue doc = parse_json(os.str(), "sarif");
    EXPECT_EQ(doc.find("version")->string, "2.1.0");
    ASSERT_NE(doc.find("$schema"), nullptr);

    const JsonValue& run = doc.find("runs")->items.at(0);
    const JsonValue& driver = *run.find("tool")->find("driver");
    EXPECT_EQ(driver.find("name")->string, "memopt_lint");
    EXPECT_EQ(driver.find("rules")->items.size(), rule_catalogue().size());

    const std::vector<JsonValue>& results = run.find("results")->items;
    ASSERT_EQ(results.size(), report.findings.size());
    std::size_t suppressed = 0;
    for (const JsonValue& result : results) {
        ASSERT_NE(result.find("ruleId"), nullptr);
        const JsonValue& location = result.find("locations")->items.at(0);
        const JsonValue& physical = *location.find("physicalLocation");
        EXPECT_EQ(physical.find("artifactLocation")->find("uri")->string, "d2_bad.cpp");
        EXPECT_GT(physical.find("region")->find("startLine")->number, 0.0);
        if (const JsonValue* sup = result.find("suppressions")) {
            ++suppressed;
            EXPECT_EQ(sup->items.at(0).find("kind")->string, "external");
        }
    }
    EXPECT_EQ(suppressed, 1u);
}

}  // namespace
}  // namespace memopt::lint
