// memopt_lint self-tests: tokenizer behaviour, per-rule fixtures with
// expected-diagnostics golden files, annotation semantics, the suppression
// baseline, and the memopt.lint.v1 JSON report.
//
// The fixture sources live in tests/lint_fixtures/ (excluded from the real
// tree scan); each bad fixture has a `<name>.expected` golden holding the
// exact `file:line: rule: message` diagnostics the linter must emit for it.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/assert.hpp"
#include "support/json.hpp"
#include "tools/lint/lint.hpp"
#include "tools/lint/rules.hpp"
#include "tools/lint/tokenizer.hpp"

#ifndef MEMOPT_LINT_FIXTURES_DIR
#error "MEMOPT_LINT_FIXTURES_DIR must point at tests/lint_fixtures"
#endif

namespace memopt::lint {
namespace {

std::vector<std::string> lint_fixture(const std::string& file) {
    LintOptions options;
    options.root = MEMOPT_LINT_FIXTURES_DIR;
    options.paths = {file};
    const LintReport report = run_lint(options);
    std::vector<std::string> rendered;
    for (const Finding& f : report.findings) rendered.push_back(f.render());
    return rendered;
}

std::vector<std::string> read_lines(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) lines.push_back(line);
    }
    return lines;
}

/// Findings for an in-memory snippet linted as `path` in isolation.
std::vector<Finding> check_snippet(const std::string& path, const std::string& code) {
    const SourceFile sf = tokenize(path, code);
    std::vector<Finding> findings;
    check_file(sf, collect_unordered_members(sf), findings);
    return findings;
}

// ---------------------------------------------------------------------------
// Fixture goldens

class LintFixture : public ::testing::TestWithParam<const char*> {};

TEST_P(LintFixture, BadFixtureMatchesGolden) {
    const std::string name = GetParam();
    const std::vector<std::string> expected =
        read_lines(std::string(MEMOPT_LINT_FIXTURES_DIR) + "/" + name + ".expected");
    ASSERT_FALSE(expected.empty());
    const std::string ext = name[0] == 'h' ? ".hpp" : ".cpp";
    EXPECT_EQ(lint_fixture(name + ext), expected);
}

INSTANTIATE_TEST_SUITE_P(AllRules, LintFixture,
                         ::testing::Values("d1_bad", "d2_bad", "d3_bad", "d4_bad", "r1_bad",
                                           "a1_bad", "h1_bad"));

class LintGoodFixture : public ::testing::TestWithParam<const char*> {};

TEST_P(LintGoodFixture, GoodFixtureIsClean) {
    EXPECT_EQ(lint_fixture(GetParam()), std::vector<std::string>{});
}

INSTANTIATE_TEST_SUITE_P(AllRules, LintGoodFixture,
                         ::testing::Values("d1_good.cpp", "d2_good.cpp", "d3_good.cpp",
                                           "r1_good.cpp", "a1_good.cpp", "h1_good.hpp",
                                           "h1_guard_good.hpp"));

// ---------------------------------------------------------------------------
// Tokenizer

TEST(LintTokenizer, SkipsCommentsAndStringContents) {
    const SourceFile sf = tokenize("t.cpp",
                                   "int x = 1; // assert(rand())\n"
                                   "const char* s = \"assert(rand())\";\n"
                                   "/* assert( */ int y;\n");
    for (const Token& t : sf.tokens) {
        EXPECT_NE(t.text, "assert");
        EXPECT_NE(t.text, "rand");
    }
}

TEST(LintTokenizer, TracksLines) {
    const SourceFile sf = tokenize("t.cpp", "int a;\n\nint b;\n");
    ASSERT_GE(sf.tokens.size(), 6u);
    EXPECT_EQ(sf.tokens[0].line, 1);  // int
    EXPECT_EQ(sf.tokens[3].line, 3);  // int (second)
    EXPECT_EQ(sf.last_line, 4);
}

TEST(LintTokenizer, RawStringsAreOpaque) {
    const SourceFile sf = tokenize("t.cpp", "auto s = R\"(assert(rand()))\"; int z;\n");
    bool saw_z = false;
    for (const Token& t : sf.tokens) {
        EXPECT_NE(t.text, "assert");
        saw_z = saw_z || t.text == "z";
    }
    EXPECT_TRUE(saw_z);
}

TEST(LintTokenizer, DirectivesAreWholeLines) {
    const SourceFile sf =
        tokenize("t.hpp", "#pragma once\n#define ADD(a, b) \\\n    ((a) + (b))\nint x;\n");
    ASSERT_GE(sf.tokens.size(), 2u);
    EXPECT_EQ(sf.tokens[0].kind, TokKind::PPDirective);
    EXPECT_EQ(sf.tokens[0].text, "#pragma once");
    EXPECT_EQ(sf.tokens[1].kind, TokKind::PPDirective);
    EXPECT_EQ(sf.tokens[1].line, 2);  // continuation folded into one token
    EXPECT_EQ(sf.tokens[2].text, "int");
    EXPECT_EQ(sf.tokens[2].line, 4);
}

TEST(LintTokenizer, AnnotationsCoverOwnLineAndNextCodeLine) {
    const SourceFile sf = tokenize("t.cpp",
                                   "// memopt-lint: order-independent -- multi-line\n"
                                   "// rationale continues without the tag\n"
                                   "int b;\n"
                                   "int a;  // memopt-lint: D1 -- trailing rationale\n");
    EXPECT_TRUE(sf.annotated(1, "order-independent"));
    EXPECT_TRUE(sf.annotated(2, "order-independent"));  // line below the tag
    EXPECT_TRUE(sf.annotated(3, "order-independent"));  // first code line after
    EXPECT_FALSE(sf.annotated(3, "D1"));
    EXPECT_TRUE(sf.annotated(4, "D1"));  // trailing annotation, own line
    // The `--` separator keeps the rationale out of the annotation words.
    EXPECT_FALSE(sf.annotated(4, "trailing"));
}

// ---------------------------------------------------------------------------
// Rules on in-memory snippets

TEST(LintRules, D1CrossFileMemberRecognition) {
    // Member declared in a header, iterated in a .cpp: the cpp alone has no
    // unordered declaration, so the cross-file member set must carry it.
    const SourceFile hpp = tokenize(
        "m.hpp", "#pragma once\n#include <unordered_map>\n"
                 "struct A { std::unordered_map<int, int> pairs_; };\n");
    const std::set<std::string> members = collect_unordered_members(hpp);
    EXPECT_EQ(members.count("pairs_"), 1u);

    const std::string cpp = "void A::walk() { for (const auto& [k, v] : pairs_) use(k, v); }\n";
    std::vector<Finding> findings;
    check_file(tokenize("m.cpp", cpp), members, findings);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "D1");

    findings.clear();
    check_file(tokenize("m.cpp", cpp), {}, findings);  // without the union: missed
    EXPECT_TRUE(findings.empty());
}

TEST(LintRules, D1AnnotationByRuleIdAlsoSuppresses) {
    const auto findings = check_snippet(
        "t.cpp",
        "#include <unordered_map>\n"
        "int f() {\n"
        "    std::unordered_map<int, int> m;\n"
        "    int s = 0;\n"
        "    for (const auto& [k, v] : m) s += k + v;  // memopt-lint: D1 -- exact sums\n"
        "    return s;\n"
        "}\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintRules, D2ExemptInsideSupportRng) {
    const std::string code = "unsigned s() { return static_cast<unsigned>(time(nullptr)); }\n";
    EXPECT_TRUE(check_snippet("src/support/rng_host_entropy.cpp", code).empty());
    EXPECT_EQ(check_snippet("src/sched/scheduler.cpp", code).size(), 1u);
}

TEST(LintRules, D3ShardLocalPartialIsClean) {
    const auto findings = check_snippet(
        "t.cpp",
        "void parallel_for(unsigned long, int);\n"
        "double f(const double* v) {\n"
        "    double out = 0.0;\n"
        "    parallel_for(8, [&](unsigned long i) { double p = 0.0; p += v[i]; use(p); });\n"
        "    return out;\n"
        "}\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintRules, R1ExemptInsideDurableLayerAndTests) {
    const std::string code = "void f(const char* p) { std::ofstream os(p); }\n";
    EXPECT_TRUE(check_snippet("src/support/durable/atomic_file.cpp", code).empty());
    EXPECT_TRUE(check_snippet("tests/test_scratch.cpp", code).empty());
    const auto findings = check_snippet("src/trace/io.cpp", code);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "R1");
}

TEST(LintRules, R1IgnoresMemberCallsAndReads) {
    const auto findings = check_snippet("src/x.cpp",
                                        "void f(Io& io, const char* p) {\n"
                                        "    io.fopen(p);\n"
                                        "    std::ifstream in(p);\n"
                                        "}\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintRules, A1IgnoresMemberAndDistinctIdentifiers) {
    const auto findings = check_snippet("t.cpp",
                                        "void f(Checker& c) {\n"
                                        "    c.assert(true);\n"
                                        "    static_assert(1 + 1 == 2);\n"
                                        "    my_assert(true);\n"
                                        "}\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintRules, H1OnlyAppliesToHeaders) {
    const std::string code = "using namespace std;\nint x;\n";
    EXPECT_TRUE(check_snippet("t.cpp", code).empty());
    const auto findings = check_snippet("t.hpp", code);
    ASSERT_EQ(findings.size(), 2u);  // missing guard + using namespace
    EXPECT_EQ(findings[0].rule, "H1");
    EXPECT_EQ(findings[1].rule, "H1");
}

// ---------------------------------------------------------------------------
// Baseline

TEST(LintBaseline, ParsesEntriesCommentsAndBlanks) {
    std::istringstream in(
        "# comment\n"
        "\n"
        "src/a.cpp:12:D1\n"
        "src/b.hpp:1:H1   # trailing comment\n");
    const auto entries = parse_baseline(in, "test");
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].file, "src/a.cpp");
    EXPECT_EQ(entries[0].line, 12);
    EXPECT_EQ(entries[0].rule, "D1");
    EXPECT_EQ(entries[1].file, "src/b.hpp");
    EXPECT_EQ(entries[1].rule, "H1");
}

TEST(LintBaseline, RejectsMalformedEntries) {
    std::istringstream bad1("not-an-entry\n");
    EXPECT_THROW(parse_baseline(bad1, "test"), Error);
    std::istringstream bad2("file:notaline:D1\n");
    EXPECT_THROW(parse_baseline(bad2, "test"), Error);
}

TEST(LintBaseline, SuppressesMatchedAndReportsStale) {
    // Baseline with one matching entry (d2_bad.cpp:7:D2), one stale.
    const std::string path = ::testing::TempDir() + "/lint_baseline_test.txt";
    {
        std::ofstream out(path);
        out << "d2_bad.cpp:7:D2\n";
        out << "d2_bad.cpp:999:D2  # stale\n";
    }
    LintOptions options;
    options.root = MEMOPT_LINT_FIXTURES_DIR;
    options.paths = {"d2_bad.cpp"};
    options.baseline_path = path;
    const LintReport report = run_lint(options);
    std::remove(path.c_str());

    EXPECT_EQ(report.findings.size(), 4u);
    EXPECT_EQ(report.baselined_count(), 1u);
    EXPECT_EQ(report.active_count(), 3u);
    ASSERT_EQ(report.stale_baseline.size(), 1u);
    EXPECT_EQ(report.stale_baseline[0], "d2_bad.cpp:999:D2");
    for (const Finding& f : report.findings) {
        EXPECT_EQ(f.baselined, f.line == 7) << f.render();
    }
}

// ---------------------------------------------------------------------------
// Driver & JSON report

TEST(LintDriver, ThrowsOnMissingPathAndBadRoot) {
    LintOptions missing;
    missing.root = MEMOPT_LINT_FIXTURES_DIR;
    missing.paths = {"no_such_file.cpp"};
    EXPECT_THROW(run_lint(missing), Error);

    LintOptions bad_root;
    bad_root.root = std::string(MEMOPT_LINT_FIXTURES_DIR) + "/d1_bad.cpp";
    EXPECT_THROW(run_lint(bad_root), Error);
}

TEST(LintDriver, ScanIsDeterministic) {
    LintOptions options;
    options.root = MEMOPT_LINT_FIXTURES_DIR;
    options.paths = {"."};
    const LintReport a = run_lint(options);
    const LintReport b = run_lint(options);
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        EXPECT_EQ(a.findings[i].render(), b.findings[i].render());
    }
    // All bad fixtures, none suppressed: 2 + 4 + 1 + 3 + 2 + 1 + 2.
    EXPECT_EQ(a.active_count(), 15u);
}

TEST(LintJson, ReportIsCompleteAndCarriesSchema) {
    LintOptions options;
    options.root = MEMOPT_LINT_FIXTURES_DIR;
    options.paths = {"d4_bad.cpp"};
    const LintReport report = run_lint(options);

    std::ostringstream os;
    JsonWriter w(os);
    write_json(w, options, report);
    EXPECT_TRUE(w.complete());
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"schema\": \"memopt.lint.v1\""), std::string::npos);
    EXPECT_NE(doc.find("\"rule\": \"D4\""), std::string::npos);
    EXPECT_NE(doc.find("\"files_scanned\": 1"), std::string::npos);
    // One entry per rule in the catalogue.
    for (const RuleInfo& r : rule_catalogue()) {
        EXPECT_NE(doc.find("\"id\": \"" + std::string(r.id) + "\""), std::string::npos);
    }
}

}  // namespace
}  // namespace memopt::lint
