// Unit and property tests for the cache models.
#include <gtest/gtest.h>

#include <algorithm>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "trace/source.hpp"
#include "trace/synthetic.hpp"

namespace memopt {
namespace {

CacheConfig small_cache(unsigned assoc = 1, unsigned line = 16, std::uint64_t size = 256) {
    CacheConfig cfg;
    cfg.size_bytes = size;
    cfg.line_bytes = line;
    cfg.associativity = assoc;
    return cfg;
}

// ----------------------------------------------------------- geometry ----

TEST(Cache, RejectsInvalidGeometry) {
    EXPECT_THROW(CacheModel(small_cache(1, 16, 1000)), Error);   // size not pow2
    EXPECT_THROW(CacheModel(small_cache(1, 10, 256)), Error);    // line not pow2
    EXPECT_THROW(CacheModel(small_cache(0, 16, 256)), Error);    // zero assoc
    EXPECT_THROW(CacheModel(small_cache(32, 16, 256)), Error);   // more ways than lines
    EXPECT_NO_THROW(CacheModel(small_cache(16, 16, 256)));       // fully associative
}

TEST(Cache, SetCount) {
    EXPECT_EQ(CacheModel(small_cache(1, 16, 256)).num_sets(), 16u);
    EXPECT_EQ(CacheModel(small_cache(4, 16, 256)).num_sets(), 4u);
}

TEST(Cache, LineBase) {
    CacheModel c(small_cache());
    EXPECT_EQ(c.line_base(0x123), 0x120u);
    EXPECT_EQ(c.line_base(0x120), 0x120u);
}

// ----------------------------------------------------------- behaviour ----

TEST(Cache, ColdMissThenHit) {
    CacheModel c(small_cache());
    const auto miss = c.access(0x100, AccessKind::Read);
    EXPECT_FALSE(miss.hit);
    ASSERT_TRUE(miss.fill_line.has_value());
    EXPECT_EQ(*miss.fill_line, 0x100u);
    EXPECT_FALSE(miss.writeback_line.has_value());
    const auto hit = c.access(0x104, AccessKind::Read);  // same line
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(c.stats().read_hits, 1u);
    EXPECT_EQ(c.stats().read_misses, 1u);
}

TEST(Cache, DirectMappedConflictEvicts) {
    CacheModel c(small_cache(1, 16, 256));  // 16 sets
    c.access(0x000, AccessKind::Read);
    c.access(0x100, AccessKind::Read);  // same set (0x000 + 256)
    EXPECT_FALSE(c.contains(0x000));
    EXPECT_TRUE(c.contains(0x100));
}

TEST(Cache, DirtyEvictionReportsWritebackAddress) {
    CacheModel c(small_cache(1, 16, 256));
    c.access(0x000, AccessKind::Write);
    const auto r = c.access(0x100, AccessKind::Read);
    ASSERT_TRUE(r.writeback_line.has_value());
    EXPECT_EQ(*r.writeback_line, 0x000u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
    CacheModel c(small_cache(1, 16, 256));
    c.access(0x000, AccessKind::Read);
    const auto r = c.access(0x100, AccessKind::Read);
    EXPECT_FALSE(r.writeback_line.has_value());
}

TEST(Cache, LruReplacementOrder) {
    CacheModel c(small_cache(2, 16, 64));  // 2 sets, 2 ways
    // Set 0 lines: 0x00, 0x20, 0x40, ... (line 16B, 2 sets -> stride 32)
    c.access(0x00, AccessKind::Read);
    c.access(0x20, AccessKind::Read);
    c.access(0x00, AccessKind::Read);   // touch 0x00: now 0x20 is LRU
    c.access(0x40, AccessKind::Read);   // evicts 0x20
    EXPECT_TRUE(c.contains(0x00));
    EXPECT_FALSE(c.contains(0x20));
    EXPECT_TRUE(c.contains(0x40));
}

TEST(Cache, WriteThroughNoAllocate) {
    CacheConfig cfg = small_cache();
    cfg.write_policy = WritePolicy::WriteThroughNoAllocate;
    CacheModel c(cfg);
    const auto w = c.access(0x100, AccessKind::Write);
    EXPECT_FALSE(w.hit);
    EXPECT_FALSE(w.fill_line.has_value());  // no allocation on write miss
    ASSERT_TRUE(w.write_through_addr.has_value());
    EXPECT_FALSE(c.contains(0x100));
    // Read-allocate, then a write hit still writes through and stays clean.
    c.access(0x100, AccessKind::Read);
    const auto w2 = c.access(0x100, AccessKind::Write);
    EXPECT_TRUE(w2.hit);
    EXPECT_TRUE(w2.write_through_addr.has_value());
    EXPECT_TRUE(c.flush().empty());  // nothing dirty
}

TEST(Cache, FlushWritesAllDirtyLinesOnce) {
    CacheModel c(small_cache(2, 16, 128));
    c.access(0x00, AccessKind::Write);
    c.access(0x10, AccessKind::Write);
    c.access(0x20, AccessKind::Read);
    auto dirty = c.flush();
    std::sort(dirty.begin(), dirty.end());
    EXPECT_EQ(dirty, (std::vector<std::uint64_t>{0x00, 0x10}));
    EXPECT_TRUE(c.flush().empty());  // idempotent
}

TEST(Cache, ResetClearsStateAndStats) {
    CacheModel c(small_cache());
    c.access(0x100, AccessKind::Write);
    c.reset();
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_EQ(c.stats().accesses(), 0u);
}

TEST(Cache, StatsAreConsistent) {
    CacheModel c(small_cache(2, 32, 1024));
    const MemTrace trace = uniform_trace({.span_bytes = 8192, .num_accesses = 5000,
                                          .write_fraction = 0.4, .seed = 3});
    for (const MemAccess& a : trace.accesses()) c.access(a.addr, a.kind);
    const CacheStats& s = c.stats();
    EXPECT_EQ(s.accesses(), 5000u);
    EXPECT_EQ(s.fills, s.read_misses + s.write_misses);  // write-allocate
    EXPECT_LE(s.writebacks, s.fills);
    EXPECT_GT(s.miss_rate(), 0.0);
    EXPECT_LT(s.miss_rate(), 1.0);
}

// LRU stack property: a larger fully-associative cache never misses more.
class LruInclusion : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruInclusion, BiggerFullyAssociativeCacheNeverWorse) {
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = 16384, .num_accesses = 8000, .write_fraction = 0.3,
                 .seed = GetParam()},
        .num_hotspots = 4,
        .hotspot_bytes = 512,
        .hot_fraction = 0.8,
    });
    std::uint64_t prev_misses = UINT64_MAX;
    for (std::uint64_t size = 256; size <= 4096; size *= 2) {
        CacheConfig cfg;
        cfg.size_bytes = size;
        cfg.line_bytes = 16;
        cfg.associativity = static_cast<unsigned>(size / 16);  // fully associative
        CacheModel c(cfg);
        for (const MemAccess& a : trace.accesses()) c.access(a.addr, a.kind);
        EXPECT_LE(c.stats().misses(), prev_misses) << "size=" << size;
        prev_misses = c.stats().misses();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruInclusion, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------- replacement ----

TEST(Replacement, FifoIgnoresTouchRefresh) {
    // Classic LRU/FIFO distinguishing sequence in one 2-way set:
    // fill A, fill B, touch A, fill C.
    //   LRU evicts B (A was refreshed); FIFO evicts A (oldest fill).
    CacheConfig lru_cfg = small_cache(2, 16, 64);
    CacheConfig fifo_cfg = lru_cfg;
    fifo_cfg.replacement = Replacement::Fifo;

    for (const bool fifo : {false, true}) {
        CacheModel c(fifo ? fifo_cfg : lru_cfg);
        c.access(0x00, AccessKind::Read);  // A
        c.access(0x20, AccessKind::Read);  // B (same set: 2 sets, stride 32)
        c.access(0x00, AccessKind::Read);  // touch A
        c.access(0x40, AccessKind::Read);  // C evicts ...
        if (fifo) {
            EXPECT_FALSE(c.contains(0x00)) << "FIFO must evict the oldest fill";
            EXPECT_TRUE(c.contains(0x20));
        } else {
            EXPECT_TRUE(c.contains(0x00)) << "LRU must keep the refreshed line";
            EXPECT_FALSE(c.contains(0x20));
        }
    }
}

TEST(Replacement, RandomIsDeterministicAcrossRuns) {
    CacheConfig cfg = small_cache(4, 16, 512);
    cfg.replacement = Replacement::Random;
    const MemTrace trace = uniform_trace({.span_bytes = 8192, .num_accesses = 5000,
                                          .write_fraction = 0.3, .seed = 12});
    auto run = [&]() {
        CacheModel c(cfg);
        for (const MemAccess& a : trace.accesses()) c.access(a.addr, a.kind);
        return c.stats().misses();
    };
    EXPECT_EQ(run(), run());
}

TEST(Replacement, RandomReplayAfterResetMatchesFreshModel) {
    // Regression: reset() used to clear the arrays but not reseed the
    // xorshift state, so a replay after reset() drew a different victim
    // sequence than a fresh model — reset() was not the documented full
    // rewind. The per-access hit pattern is the sensitive observable.
    CacheConfig cfg = small_cache(4, 16, 512);
    cfg.replacement = Replacement::Random;
    const MemTrace trace = uniform_trace({.span_bytes = 8192, .num_accesses = 5000,
                                          .write_fraction = 0.3, .seed = 21});
    auto hit_pattern = [&](CacheModel& c) {
        std::vector<bool> hits;
        hits.reserve(trace.size());
        for (const MemAccess& a : trace.accesses()) hits.push_back(c.access(a.addr, a.kind).hit);
        return hits;
    };
    CacheModel model(cfg);
    const std::vector<bool> fresh = hit_pattern(model);
    model.reset();
    EXPECT_EQ(hit_pattern(model), fresh);
    EXPECT_EQ(model.stats().misses(),
              static_cast<std::uint64_t>(std::count(fresh.begin(), fresh.end(), false)));
}

TEST(Replacement, LruBeatsRandomOnReuseFriendlyWorkloads) {
    // A hot working set that fits the cache plus uniform background noise:
    // LRU protects the hot lines, random replacement occasionally evicts
    // them. (On cyclic sweeps beyond capacity the ordering flips — that is
    // the classic anti-LRU case, deliberately not used here.)
    CacheConfig lru_cfg = small_cache(4, 16, 1024);
    CacheConfig rnd_cfg = lru_cfg;
    rnd_cfg.replacement = Replacement::Random;
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = 32768, .num_accesses = 30000, .write_fraction = 0.2, .seed = 4},
        .num_hotspots = 2,
        .hotspot_bytes = 256,
        .hot_fraction = 0.9,
    });
    CacheModel lru(lru_cfg);
    CacheModel rnd(rnd_cfg);
    for (const MemAccess& a : trace.accesses()) {
        lru.access(a.addr, a.kind);
        rnd.access(a.addr, a.kind);
    }
    EXPECT_LE(lru.stats().misses(), rnd.stats().misses());
}

// ----------------------------------------------------------- hierarchy ----

TEST(Hierarchy, RejectsInconsistentLevels) {
    EXPECT_THROW(CacheHierarchy(small_cache(1, 32, 256), small_cache(1, 16, 1024)), Error);
    EXPECT_THROW(CacheHierarchy(small_cache(1, 16, 1024), small_cache(1, 16, 256)), Error);
}

TEST(Hierarchy, L1HitsNeverReachL2) {
    CacheHierarchy h(small_cache(1, 16, 256), small_cache(4, 32, 4096));
    h.access(0x100, AccessKind::Read);
    const std::uint64_t l2_after_fill = h.l2().stats().accesses();
    h.access(0x104, AccessKind::Read);  // L1 hit
    EXPECT_EQ(h.l2().stats().accesses(), l2_after_fill);
}

TEST(Hierarchy, ReplaySplitsLineStraddlingAccesses) {
    // Regression: replay(TraceSource&) used to ignore chunk.sizes, so an
    // access straddling an L1 line boundary only touched its first line —
    // undercounting misses relative to the byte-accurate replays.
    CacheHierarchy h(small_cache(2, 16, 512), small_cache(4, 32, 4096));
    MemTrace trace;
    MemAccess a;
    a.addr = 14;  // bytes 14..17 cover lines 0 and 16
    a.size = 4;
    a.kind = AccessKind::Read;
    trace.add(a);
    MaterializedSource source(trace);
    h.replay(source);
    EXPECT_EQ(h.l1().stats().read_misses, 2u);
    EXPECT_TRUE(h.l1().contains(0x00));
    EXPECT_TRUE(h.l1().contains(0x10));
}

TEST(Hierarchy, TrafficConservation) {
    CacheHierarchy h(small_cache(2, 16, 512), small_cache(4, 32, 4096));
    const MemTrace trace = uniform_trace({.span_bytes = 32768, .num_accesses = 20000,
                                          .write_fraction = 0.3, .seed = 9});
    for (const MemAccess& a : trace.accesses()) h.access(a.addr, a.kind);
    h.flush();
    // Everything that was fetched from memory was either still resident at
    // flush time or had been written back (clean evictions drop data, so
    // fetches >= writes).
    EXPECT_GE(h.traffic().line_fetches, h.traffic().line_writes);
    EXPECT_GT(h.traffic().line_fetches, 0u);
    // L2 sees only L1 miss traffic.
    EXPECT_EQ(h.l2().stats().accesses(),
              h.l1().stats().fills + h.l1().stats().writebacks);
}

}  // namespace
}  // namespace memopt
