// Tests for the observability layer: the streaming JSON writer
// (support/json.hpp), the metrics registry (support/metrics.hpp), and the
// to_json serializers of the result structs — including the determinism
// contract that serialized results are bit-identical at any job count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>

#include "core/flow.hpp"
#include "core/study.hpp"
#include "sim/kernels.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "trace/synthetic.hpp"

namespace memopt {
namespace {

// ---------------------------------------------------------------- JsonWriter

MemTrace make_hot_trace(std::uint64_t seed) {
    HotspotParams hp;
    hp.base.span_bytes = 1 << 14;
    hp.base.num_accesses = 3000;
    hp.base.seed = seed;
    hp.hot_fraction = 0.7;
    return scattered_hotspot_trace(hp);
}

TEST(JsonWriter, BuildsCompleteDocument) {
    std::stringstream ss;
    JsonWriter w(ss, 0);
    w.begin_object();
    w.member("name", "fir");
    w.key("inner").begin_object();
    w.member("ok", true);
    w.end_object();
    w.key("list").begin_array();
    w.value(1).value(2);
    w.end_array();
    w.end_object();
    EXPECT_TRUE(w.complete());
    const std::string doc = ss.str();
    EXPECT_NE(doc.find("\"name\": \"fir\""), std::string::npos);
    EXPECT_NE(doc.find("\"ok\": true"), std::string::npos);
    EXPECT_NE(doc.find('['), std::string::npos);
}

TEST(JsonWriter, EscapesStringsPerRfc8259) {
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(JsonWriter::escape("tab\tnewline\n"), "tab\\tnewline\\n");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(JsonWriter::escape("\b\f\r"), "\\b\\f\\r");
}

TEST(JsonWriter, DoublesRoundTripThroughStrtod) {
    for (const double v : {0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 6305987.25, 1e-300, 1e300}) {
        const std::string text = JsonWriter::format_double(v);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
    }
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
    EXPECT_EQ(JsonWriter::format_double(std::numeric_limits<double>::quiet_NaN()), "null");
    EXPECT_EQ(JsonWriter::format_double(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(JsonWriter::format_double(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, EnforcesWellFormedness) {
    {
        std::stringstream ss;
        JsonWriter w(ss);
        w.begin_object();
        EXPECT_THROW(w.value(1), Error);  // value without a key
    }
    {
        std::stringstream ss;
        JsonWriter w(ss);
        w.begin_object();
        w.key("dangling");
        EXPECT_THROW(w.end_object(), Error);  // key without a value
    }
    {
        std::stringstream ss;
        JsonWriter w(ss);
        w.value(1);
        EXPECT_THROW(w.value(2), Error);  // second root
    }
    {
        std::stringstream ss;
        JsonWriter w(ss);
        EXPECT_THROW(w.key("k"), Error);  // key outside an object
    }
    {
        std::stringstream ss;
        JsonWriter w(ss);
        w.begin_array();
        EXPECT_THROW(w.end_object(), Error);  // mismatched close
    }
    {
        std::stringstream ss;
        JsonWriter w(ss);
        w.begin_object();
        w.member("k", 1);
        w.end_object();
        EXPECT_TRUE(w.complete());
        EXPECT_THROW(w.null(), Error);  // second root via null()
    }
}

// ------------------------------------------------------------------- Metrics

TEST(Metrics, CounterIsExactUnderConcurrency) {
    MetricCounter& counter = MetricsRegistry::instance().counter("test.concurrent_counter");
    counter.reset();
    constexpr std::size_t kIters = 20000;
    parallel_for(kIters, [&](std::size_t) { counter.add(); }, /*jobs=*/8);
    EXPECT_EQ(counter.value(), kIters);
}

TEST(Metrics, TimerAccumulatesUnderConcurrency) {
    MetricTimer& timer = MetricsRegistry::instance().timer("test.concurrent_timer");
    timer.reset();
    parallel_for(64, [&](std::size_t) { ScopedTimer scope(timer); }, /*jobs=*/8);
    EXPECT_EQ(timer.count(), 64u);
}

TEST(Metrics, ReferencesSurviveReset) {
    MetricCounter& a = MetricsRegistry::instance().counter("test.reset_me");
    a.add(5);
    MetricsRegistry::instance().reset();
    EXPECT_EQ(a.value(), 0u);
    // The same name must still resolve to the same (zeroed) entry.
    EXPECT_EQ(&MetricsRegistry::instance().counter("test.reset_me"), &a);
    a.add(2);
    EXPECT_EQ(a.value(), 2u);
}

TEST(Metrics, SnapshotSortedAndSerializable) {
    MetricCounter& snap_a = MetricsRegistry::instance().counter("test.snap_a");
    MetricCounter& snap_b = MetricsRegistry::instance().counter("test.snap_b");
    snap_a.reset();
    snap_b.reset();
    snap_b.add(2);
    snap_a.add(1);
    MetricsRegistry::instance().timer("test.snap_t").record(std::chrono::nanoseconds(1500));
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    ASSERT_GE(snap.counters.size(), 2u);
    for (std::size_t i = 1; i < snap.counters.size(); ++i)
        EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);

    std::stringstream ss;
    JsonWriter w(ss);
    snap.to_json(w);
    EXPECT_TRUE(w.complete());
    const std::string doc = ss.str();
    EXPECT_NE(doc.find("\"counters\""), std::string::npos);
    EXPECT_NE(doc.find("\"timers\""), std::string::npos);
    EXPECT_NE(doc.find("\"test.snap_a\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"total_ms\""), std::string::npos);
}

TEST(Metrics, InstrumentationNeverChangesFlowResults) {
    // The observability contract: running with metrics reset vs accumulated
    // state yields byte-identical serialized results.
    const MemTrace trace = make_hot_trace(3);
    FlowParams fp;
    fp.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(fp);

    const auto serialize = [&] {
        std::stringstream ss;
        JsonWriter w(ss);
        const FlowComparison cmp = flow.compare(trace, ClusterMethod::Frequency);
        to_json(w, cmp);
        return ss.str();
    };
    const std::string first = serialize();
    MetricsRegistry::instance().reset();
    const std::string second = serialize();
    EXPECT_EQ(first, second);
}

// -------------------------------------------------------------- Serializers

TEST(Serializers, FlowComparisonSchemaAndJobInvariance) {
    std::vector<MemTrace> traces;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) traces.push_back(make_hot_trace(seed));
    FlowParams fp;
    fp.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(fp);

    const auto serialize_all = [&](std::size_t jobs) {
        std::stringstream ss;
        JsonWriter w(ss);
        w.begin_array();
        for (const FlowComparison& cmp :
             flow.compare_all(std::span<const MemTrace>(traces), ClusterMethod::Frequency,
                              jobs))
            to_json(w, cmp);
        w.end_array();
        return ss.str();
    };
    const std::string serial = serialize_all(1);
    const std::string parallel = serialize_all(8);
    EXPECT_EQ(serial, parallel);  // the --json determinism contract

    EXPECT_NE(serial.find("\"monolithic\""), std::string::npos);
    EXPECT_NE(serial.find("\"partitioned\""), std::string::npos);
    EXPECT_NE(serial.find("\"clustered\""), std::string::npos);
    EXPECT_NE(serial.find("\"clustering_savings_pct\""), std::string::npos);
    EXPECT_NE(serial.find("\"banks\""), std::string::npos);
    EXPECT_NE(serial.find("\"total_pj\""), std::string::npos);
    EXPECT_NE(serial.find("\"components\""), std::string::npos);
}

TEST(Serializers, StudyReportCoversAllSections) {
    const StudyReport report = study_kernel(kernel_by_name("crc32"));
    std::stringstream ss;
    JsonWriter w(ss);
    to_json(w, report);
    EXPECT_TRUE(w.complete());
    const std::string doc = ss.str();
    EXPECT_NE(doc.find("\"name\": \"crc32\""), std::string::npos);
    EXPECT_NE(doc.find("\"memory\""), std::string::npos);
    EXPECT_NE(doc.find("\"compression_baseline\""), std::string::npos);
    EXPECT_NE(doc.find("\"compression\""), std::string::npos);
    EXPECT_NE(doc.find("\"encoding\""), std::string::npos);
    EXPECT_NE(doc.find("\"traffic_ratio\""), std::string::npos);
    EXPECT_NE(doc.find("\"gates\""), std::string::npos);
    EXPECT_NE(doc.find("\"clustering_savings_pct\""), std::string::npos);
    EXPECT_NE(doc.find("\"compression_savings_pct\""), std::string::npos);
    EXPECT_NE(doc.find("\"encoding_reduction_pct\""), std::string::npos);
}

}  // namespace
}  // namespace memopt
