// Fault-injection subsystem: SECDED/parity codes, the deterministic
// injector, Monte-Carlo campaigns, and graceful degradation in the
// compressed-memory simulation.
#include <gtest/gtest.h>

#include "compress/diff_codec.hpp"
#include "compress/platform.hpp"
#include "fault/campaign.hpp"
#include "fault/inject.hpp"
#include "fault/protect.hpp"
#include "support/rng.hpp"
#include "trace/synthetic.hpp"

namespace memopt {
namespace {

// ---- SECDED code ---------------------------------------------------------

TEST(Secded, CleanWordsCheckClean) {
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t data = rng.next_u64();
        std::uint8_t check = secded_encode(data);
        const std::uint64_t original = data;
        EXPECT_EQ(secded_check(data, check), CheckOutcome::Clean);
        EXPECT_EQ(data, original);
        EXPECT_EQ(check, secded_encode(original));
    }
}

TEST(Secded, CorrectsEverySingleBitFlip) {
    Rng rng(11);
    for (int trial = 0; trial < 8; ++trial) {
        const std::uint64_t original = rng.next_u64();
        // Data-bit flips.
        for (unsigned bit = 0; bit < 64; ++bit) {
            std::uint64_t data = original ^ (1ULL << bit);
            std::uint8_t check = secded_encode(original);
            EXPECT_EQ(secded_check(data, check), CheckOutcome::Corrected) << "bit " << bit;
            EXPECT_EQ(data, original) << "bit " << bit;
        }
        // Check-bit flips (7 Hamming + overall parity).
        for (unsigned bit = 0; bit < 8; ++bit) {
            std::uint64_t data = original;
            std::uint8_t check =
                static_cast<std::uint8_t>(secded_encode(original) ^ (1u << bit));
            EXPECT_EQ(secded_check(data, check), CheckOutcome::Corrected)
                << "check bit " << bit;
            EXPECT_EQ(data, original) << "check bit " << bit;
            EXPECT_EQ(check, secded_encode(original)) << "check bit " << bit;
        }
    }
}

TEST(Secded, DetectsEveryDoubleBitFlip) {
    Rng rng(13);
    const std::uint64_t original = rng.next_u64();
    const std::uint8_t original_check = secded_encode(original);
    // All pairs over the 72 stored bits: positions 0..63 are data bits,
    // 64..71 are check bits.
    auto flip = [&](std::uint64_t& data, std::uint8_t& check, unsigned pos) {
        if (pos < 64) data ^= 1ULL << pos;
        else check = static_cast<std::uint8_t>(check ^ (1u << (pos - 64)));
    };
    for (unsigned a = 0; a < 72; ++a) {
        for (unsigned b = a + 1; b < 72; ++b) {
            std::uint64_t data = original;
            std::uint8_t check = original_check;
            flip(data, check, a);
            flip(data, check, b);
            EXPECT_EQ(secded_check(data, check), CheckOutcome::Detected)
                << "pair (" << a << ", " << b << ")";
        }
    }
}

TEST(Parity, DetectsOddFlipsMissesEven) {
    const std::uint64_t data = 0xDEADBEEFCAFEF00DULL;
    const std::uint8_t p = parity_encode(data);
    EXPECT_EQ(parity_encode(data ^ 1ULL), static_cast<std::uint8_t>(p ^ 1u));
    EXPECT_EQ(parity_encode(data ^ 3ULL), p);  // two flips alias to clean
}

TEST(ProtectionSchemeTest, CheckBitsAndNames) {
    EXPECT_EQ(protection_check_bits(ProtectionScheme::None, 64), 0u);
    EXPECT_EQ(protection_check_bits(ProtectionScheme::Parity, 64), 1u);
    EXPECT_EQ(protection_check_bits(ProtectionScheme::Secded, 64), 8u);
    EXPECT_EQ(protection_check_bits(ProtectionScheme::Secded, 32), 7u);
    EXPECT_STREQ(protection_name(ProtectionScheme::None), "none");
    EXPECT_STREQ(protection_name(ProtectionScheme::Parity), "parity");
    EXPECT_STREQ(protection_name(ProtectionScheme::Secded), "secded");
    EXPECT_EQ(protected_stored_bytes(32, ProtectionScheme::None), 32u);
    EXPECT_EQ(protected_stored_bytes(32, ProtectionScheme::Secded), 36u);  // 4 words * 8 bits
    EXPECT_EQ(protected_stored_bytes(33, ProtectionScheme::Secded), 38u);  // 5 started words
    EXPECT_EQ(protected_stored_bytes(32, ProtectionScheme::Parity), 33u);  // 4 bits, 1 byte
}

TEST(ProtectionEnergy, NoneIsFreeAndStrongerCostsMore) {
    EXPECT_EQ(protection_access_energy(ProtectionScheme::None, 64), 0.0);
    const double parity = protection_access_energy(ProtectionScheme::Parity, 64);
    const double secded = protection_access_energy(ProtectionScheme::Secded, 64);
    EXPECT_GT(parity, 0.0);
    EXPECT_GT(secded, parity);
    // None keeps the SRAM model bit-identical to the unprotected one.
    const SramEnergyModel base(4096, 32, SramTechnology{});
    const SramEnergyModel none(4096, 32, SramTechnology{}, ProtectionScheme::None);
    EXPECT_EQ(base.read_energy(), none.read_energy());
    EXPECT_EQ(base.write_energy(), none.write_energy());
    const SramEnergyModel prot(4096, 32, SramTechnology{}, ProtectionScheme::Secded);
    EXPECT_GT(prot.read_energy(), base.read_energy());
}

// ---- ProtectedBuffer -----------------------------------------------------

TEST(ProtectedBufferTest, RoundTripsAndScrubsSingleFlips) {
    Rng rng(17);
    std::vector<std::uint8_t> data(20);  // 2.5 words: padding is stored too
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));

    ProtectedBuffer buffer(data, ProtectionScheme::Secded);
    EXPECT_EQ(buffer.total_bits(), 3 * 72u);
    EXPECT_EQ(buffer.bytes(), data);

    // One flip per word, anywhere in the stored bit space: all corrected.
    buffer.flip_bit(5);
    buffer.flip_bit(72 + 70);   // a check bit of word 1
    buffer.flip_bit(2 * 72 + 60);  // a padding bit of word 2
    const ProtectedBuffer::ScrubResult scrub = buffer.scrub();
    EXPECT_EQ(scrub.corrected_words, 3u);
    EXPECT_EQ(scrub.detected_words, 0u);
    EXPECT_EQ(buffer.bytes(), data);
}

TEST(ProtectedBufferTest, DoubleFlipInOneWordIsDetected) {
    std::vector<std::uint8_t> data(8, 0xA5);
    ProtectedBuffer buffer(data, ProtectionScheme::Secded);
    buffer.flip_bit(3);
    buffer.flip_bit(40);
    const ProtectedBuffer::ScrubResult scrub = buffer.scrub();
    EXPECT_EQ(scrub.corrected_words, 0u);
    EXPECT_EQ(scrub.detected_words, 1u);
}

TEST(ProtectedBufferTest, UnprotectedScrubObservesNothing) {
    std::vector<std::uint8_t> data(16, 0x3C);
    ProtectedBuffer buffer(data, ProtectionScheme::None);
    EXPECT_EQ(buffer.total_bits(), 128u);
    buffer.flip_bit(0);
    const ProtectedBuffer::ScrubResult scrub = buffer.scrub();
    EXPECT_EQ(scrub.corrected_words, 0u);
    EXPECT_EQ(scrub.detected_words, 0u);
    EXPECT_NE(buffer.bytes(), data);  // the flip silently sticks
}

// ---- deterministic injector ----------------------------------------------

TEST(FaultInjectorTest, SameSeedAndStreamReproduceExactly) {
    const FaultInjector injector(99);
    std::vector<std::uint8_t> a(64, 0);
    std::vector<std::uint8_t> b(64, 0);
    Rng ra = injector.stream_rng(5);
    Rng rb = injector.stream_rng(5);
    const std::size_t fa = FaultInjector::flip_bits(std::span<std::uint8_t>(a), 0.05, ra);
    const std::size_t fb = FaultInjector::flip_bits(std::span<std::uint8_t>(b), 0.05, rb);
    EXPECT_EQ(fa, fb);
    EXPECT_EQ(a, b);
}

TEST(FaultInjectorTest, DifferentStreamsDiffer) {
    const FaultInjector injector(99);
    std::vector<std::uint8_t> a(256, 0);
    std::vector<std::uint8_t> b(256, 0);
    Rng ra = injector.stream_rng(1);
    Rng rb = injector.stream_rng(2);
    FaultInjector::flip_bits(std::span<std::uint8_t>(a), 0.05, ra);
    FaultInjector::flip_bits(std::span<std::uint8_t>(b), 0.05, rb);
    EXPECT_NE(a, b);
}

TEST(FaultInjectorTest, FlipExactFlipsExactlyN) {
    const FaultInjector injector(3);
    std::vector<std::uint8_t> data(8, 0);
    ProtectedBuffer buffer(data, ProtectionScheme::None);
    Rng rng = injector.stream_rng(0);
    FaultInjector::flip_exact(buffer, 5, rng);
    const std::vector<std::uint8_t> out = buffer.bytes();
    int set = 0;
    for (std::uint8_t byte : out) set += __builtin_popcount(byte);
    EXPECT_EQ(set, 5);
    Rng rng2 = injector.stream_rng(1);
    EXPECT_THROW(FaultInjector::flip_exact(buffer, 65, rng2), Error);
}

TEST(SleepyFlipProbability, ScalesWithResidencyAndClamps) {
    EXPECT_EQ(sleepy_flip_probability(1e-4, 0, 1000, 4.0), 1e-4);
    EXPECT_DOUBLE_EQ(sleepy_flip_probability(1e-4, 1000, 1000, 4.0), 5e-4);
    EXPECT_LT(sleepy_flip_probability(1e-4, 500, 1000, 4.0),
              sleepy_flip_probability(1e-4, 900, 1000, 4.0));
    EXPECT_EQ(sleepy_flip_probability(0.4, 1000, 1000, 9.0), 0.5);  // clamp
    EXPECT_EQ(sleepy_flip_probability(1e-4, 10, 0, 4.0), 1e-4);     // no cycles
    EXPECT_THROW(sleepy_flip_probability(-1.0, 0, 1, 1.0), Error);
}

// ---- campaigns -----------------------------------------------------------

std::vector<std::vector<std::uint8_t>> test_corpus(std::size_t lines, unsigned line_bytes,
                                                   std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<std::uint8_t>> corpus(lines);
    for (auto& line : corpus) {
        line.resize(line_bytes);
        // Smooth-ish data so the diff codec actually compresses some lines.
        std::uint8_t value = static_cast<std::uint8_t>(rng.next_below(256));
        for (auto& b : line) {
            value = static_cast<std::uint8_t>(value + rng.next_below(5));
            b = value;
        }
    }
    return corpus;
}

TEST(LineCorpus, SlicesAndZeroPads) {
    std::vector<std::uint8_t> image(40, 0xFF);
    const auto corpus = line_corpus(image, 32);
    ASSERT_EQ(corpus.size(), 2u);
    EXPECT_EQ(corpus[0], std::vector<std::uint8_t>(32, 0xFF));
    for (std::size_t i = 0; i < 32; ++i)
        EXPECT_EQ(corpus[1][i], i < 8 ? 0xFF : 0x00);
    EXPECT_THROW(line_corpus({}, 32), Error);
    EXPECT_THROW(line_corpus(image, 30), Error);
}

TEST(FaultCampaign, BitIdenticalAcrossJobCounts) {
    const auto corpus = test_corpus(24, 32, 5);
    const DiffCodec diff;
    FaultCampaignConfig config;
    config.seed = 21;
    config.trials = 16;
    config.bit_flip_rate = 2e-3;
    config.protection = ProtectionScheme::Secded;
    config.codec = &diff;

    config.jobs = 1;
    const FaultCampaignResult serial = run_campaign(config, corpus);
    config.jobs = 4;
    const FaultCampaignResult parallel = run_campaign(config, corpus);

    EXPECT_EQ(serial.lines_evaluated, parallel.lines_evaluated);
    EXPECT_EQ(serial.faults_injected, parallel.faults_injected);
    EXPECT_EQ(serial.corrected, parallel.corrected);
    EXPECT_EQ(serial.detected, parallel.detected);
    EXPECT_EQ(serial.codec_rejects, parallel.codec_rejects);
    EXPECT_EQ(serial.degraded, parallel.degraded);
    EXPECT_EQ(serial.silent, parallel.silent);
    EXPECT_EQ(serial.clean, parallel.clean);
    // Energy must be bit-identical, not approximately equal.
    EXPECT_EQ(serial.energy.total(), parallel.energy.total());
    EXPECT_EQ(serial.energy.component("sram_access"),
              parallel.energy.component("sram_access"));
    EXPECT_EQ(serial.energy.component("protection"),
              parallel.energy.component("protection"));
    EXPECT_EQ(serial.energy.component("refetch"), parallel.energy.component("refetch"));
    EXPECT_GT(serial.faults_injected, 0u);
}

TEST(FaultCampaign, StrongerProtectionDeliversFewerSilentLines) {
    const auto corpus = test_corpus(32, 32, 9);
    FaultCampaignConfig config;
    config.seed = 77;
    config.trials = 48;
    config.bit_flip_rate = 1e-3;

    config.protection = ProtectionScheme::None;
    const FaultCampaignResult none = run_campaign(config, corpus);
    config.protection = ProtectionScheme::Parity;
    const FaultCampaignResult parity = run_campaign(config, corpus);
    config.protection = ProtectionScheme::Secded;
    const FaultCampaignResult secded = run_campaign(config, corpus);

    EXPECT_GT(none.silent, 0u);
    EXPECT_EQ(none.corrected, 0u);
    EXPECT_GT(secded.corrected, 0u);
    EXPECT_LE(secded.silent, parity.silent);
    EXPECT_LE(parity.silent, none.silent);
    EXPECT_GT(secded.energy.component("protection"),
              parity.energy.component("protection"));
}

TEST(FaultCampaign, ValidatesInputs) {
    const auto corpus = test_corpus(4, 32, 1);
    FaultCampaignConfig config;
    config.trials = 0;
    EXPECT_THROW(run_campaign(config, corpus), Error);
    config.trials = 1;
    EXPECT_THROW(run_campaign(config, {}), Error);
    const std::vector<double> wrong_probs(3, 1e-4);
    EXPECT_THROW(run_campaign(config, corpus, wrong_probs), Error);
}

// ---- graceful degradation in the memory system ---------------------------

TEST(MemsysFaults, DegradedRefillsAreAccountedAndDeterministic) {
    SyntheticParams sp;
    sp.span_bytes = 4096;
    sp.num_accesses = 6000;
    sp.write_fraction = 0.5;
    sp.seed = 3;
    const MemTrace trace = uniform_trace(sp);
    std::vector<std::uint8_t> image(4096);
    Rng rng(4);
    std::uint8_t value = 0;
    for (auto& b : image) {
        value = static_cast<std::uint8_t>(value + rng.next_below(4));
        b = value;
    }

    const DiffCodec diff;
    CompressedMemConfig config = vliw_platform().config;
    config.protection = ProtectionScheme::Secded;
    config.faults = MemFaultParams{0.002, 8};

    const CompressedMemReport a = CompressedMemorySim(config, &diff).run(trace, image, 0);
    EXPECT_GT(a.faults_injected, 0u);
    EXPECT_GT(a.corrected_faults, 0u);
    EXPECT_GT(a.degraded_refills, 0u);
    EXPECT_GT(a.energy.component("refetch"), 0.0);
    EXPECT_GT(a.energy.component("ecc"), 0.0);
    // SECDED flags every detected line: nothing slips through silently at
    // this flip rate's double-bit-per-word scale, and what does slip is
    // counted, never delivered as if clean.
    const CompressedMemReport b = CompressedMemorySim(config, &diff).run(trace, image, 0);
    EXPECT_EQ(a.faults_injected, b.faults_injected);
    EXPECT_EQ(a.corrected_faults, b.corrected_faults);
    EXPECT_EQ(a.degraded_refills, b.degraded_refills);
    EXPECT_EQ(a.silent_refills, b.silent_refills);
    EXPECT_EQ(a.energy.total(), b.energy.total());
}

TEST(MemsysFaults, UnprotectedFaultsSlipThroughOrRejected) {
    SyntheticParams sp;
    sp.span_bytes = 4096;
    sp.num_accesses = 6000;
    sp.write_fraction = 0.5;
    sp.seed = 5;
    const MemTrace trace = uniform_trace(sp);
    const std::vector<std::uint8_t> image(4096, 0x11);

    const DiffCodec diff;
    CompressedMemConfig config = vliw_platform().config;
    config.faults = MemFaultParams{0.004, 8};  // protection stays None

    const CompressedMemReport report =
        CompressedMemorySim(config, &diff).run(trace, image, 0);
    EXPECT_GT(report.faults_injected, 0u);
    EXPECT_EQ(report.corrected_faults, 0u);
    // Without ECC every corrupted line either decodes to garbage (silent)
    // or is rejected by the codec (degraded); both tallies are observable.
    EXPECT_GT(report.silent_refills + report.degraded_refills, 0u);
}

TEST(MemsysFaults, FaultsAndRoundTripCheckAreExclusive) {
    CompressedMemConfig config = vliw_platform().config;
    config.verify_roundtrip = true;
    config.faults = MemFaultParams{1e-3, 1};
    const DiffCodec diff;
    EXPECT_THROW(CompressedMemorySim(config, &diff), Error);
    config.verify_roundtrip = false;
    config.faults->stored_bit_flip_prob = 1.5;
    EXPECT_THROW(CompressedMemorySim(config, &diff), Error);
}

}  // namespace
}  // namespace memopt
