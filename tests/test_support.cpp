// Unit tests for the support module: RNG, statistics, strings, tables, CSV.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/assert.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

namespace memopt {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForEqualSeeds) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveBounds) {
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const std::int64_t v = rng.next_in(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, NextDoubleInUnitInterval) {
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextBoolExtremes) {
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.next_bool(0.0));
        EXPECT_TRUE(rng.next_bool(1.0));
    }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
    Rng rng(5);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GaussianMoments) {
    Rng rng(17);
    Accumulator acc;
    for (int i = 0; i < 100000; ++i) acc.add(rng.next_gaussian());
    EXPECT_NEAR(acc.mean(), 0.0, 0.02);
    EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Rng, ZipfLikePrefersLowIndices) {
    Rng rng(23);
    std::uint64_t low = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) low += rng.next_zipf_like(16, 0.3) < 4;
    EXPECT_GT(low, static_cast<std::uint64_t>(n) / 2);
}

TEST(Rng, ZipfLikeStaysBelowN) {
    Rng rng(29);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_zipf_like(5, 0.5), 5u);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(31);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

// -------------------------------------------------------------- stats ----

TEST(Stats, MeanAndStddev) {
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, EmptyMeanIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stats, GeomeanKnownValue) {
    const std::vector<double> xs{1.0, 4.0, 16.0};
    EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive) {
    const std::vector<double> xs{1.0, -2.0};
    EXPECT_THROW(geomean(xs), Error);
}

TEST(Stats, PercentileEndpointsAndMedian) {
    const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Stats, PercentileRejectsEmptyAndBadP) {
    EXPECT_THROW(percentile({}, 50.0), Error);
    const std::vector<double> xs{1.0};
    EXPECT_THROW(percentile(xs, 101.0), Error);
}

TEST(Stats, AccumulatorMatchesBatch) {
    Rng rng(5);
    std::vector<double> xs;
    Accumulator acc;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.next_double() * 10;
        xs.push_back(x);
        acc.add(x);
    }
    EXPECT_NEAR(acc.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(acc.stddev(), stddev(xs), 1e-9);
    EXPECT_EQ(acc.count(), xs.size());
}

TEST(Stats, PercentSavings) {
    EXPECT_DOUBLE_EQ(percent_savings(200.0, 150.0), 25.0);
    EXPECT_DOUBLE_EQ(percent_savings(100.0, 130.0), -30.0);
    EXPECT_THROW(percent_savings(0.0, 1.0), Error);
}

// ------------------------------------------------------------- string ----

TEST(StringUtil, Trim) {
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, SplitPreservesEmptyFields) {
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(StringUtil, SplitWsDropsEmpties) {
    const auto parts = split_ws("  a \t b\tc  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, ParseIntDecimalHexSigned) {
    EXPECT_EQ(parse_int("42").value(), 42);
    EXPECT_EQ(parse_int("-17").value(), -17);
    EXPECT_EQ(parse_int("0x1F").value(), 31);
    EXPECT_EQ(parse_int("+5").value(), 5);
    EXPECT_EQ(parse_int(" 7 ").value(), 7);
}

TEST(StringUtil, ParseIntRejectsMalformed) {
    EXPECT_FALSE(parse_int("").has_value());
    EXPECT_FALSE(parse_int("12x").has_value());
    EXPECT_FALSE(parse_int("0x").has_value());
    EXPECT_FALSE(parse_int("-").has_value());
    EXPECT_FALSE(parse_int("1.5").has_value());
}

TEST(StringUtil, FormatBytes) {
    EXPECT_EQ(format_bytes(256), "256 B");
    EXPECT_EQ(format_bytes(4096), "4 KiB");
    EXPECT_EQ(format_bytes(1 << 20), "1 MiB");
    EXPECT_EQ(format_bytes(1500), "1500 B");
}

TEST(StringUtil, FormatEnergy) {
    EXPECT_EQ(format_energy_pj(853.0), "853.0 pJ");
    EXPECT_EQ(format_energy_pj(1270.0), "1.270 nJ");
    EXPECT_EQ(format_energy_pj(3.5e6), "3.500 uJ");
}

// -------------------------------------------------------------- table ----

TEST(Table, AlignsColumns) {
    TablePrinter t({"name", "value"});
    t.add_row({"a", "1"});
    t.add_row({"longer", "22"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    // All lines share the same width.
    std::istringstream iss(s);
    std::string line;
    std::set<std::size_t> widths;
    while (std::getline(iss, line)) widths.insert(line.size());
    EXPECT_EQ(widths.size(), 1u);
}

TEST(Table, RejectsMismatchedRow) {
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, RejectsEmptyHeader) { EXPECT_THROW(TablePrinter({}), Error); }

// ---------------------------------------------------------------- csv ----

TEST(Csv, EscapesSpecials) {
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.write_row({"x", "y"});
    csv.write_row_numeric("run1", {1.5, 2.0});
    EXPECT_EQ(oss.str(), "x,y\nrun1,1.5,2\n");
}

// ------------------------------------------------------------- errors ----

TEST(ErrorHandling, RequireThrowsWithMessage) {
    try {
        require(false, "my message");
        FAIL() << "expected throw";
    } catch (const Error& e) {
        EXPECT_STREQ(e.what(), "my message");
    }
}

}  // namespace
}  // namespace memopt
