// Tests for the parallel execution layer: the thread-pool runtime
// (support/parallel), the shared workload repository (core/workload), and
// the determinism guarantee of the batch flow/study/search APIs — outputs
// must be bit-identical at 1 and N jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include "core/flow.hpp"
#include "core/study.hpp"
#include "core/workload.hpp"
#include "encoding/search.hpp"
#include "sim/kernels.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace memopt {
namespace {

/// RAII guard: force a jobs default for one test, restore afterwards.
struct JobsGuard {
    explicit JobsGuard(std::size_t jobs) { set_default_jobs(jobs); }
    ~JobsGuard() { set_default_jobs(0); }
};

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsAllSubmittedTasks) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool(3);
        EXPECT_EQ(pool.size(), 3u);
        for (int i = 0; i < 100; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
    }  // destructor drains the queue and joins
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
    std::mutex mutex;
    std::set<std::thread::id> ids;
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&] {
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    ids.insert(std::this_thread::get_id());
                }
                done.fetch_add(1);
            });
    }
    EXPECT_EQ(done.load(), 32);
    EXPECT_GE(ids.size(), 1u);
    EXPECT_LE(ids.size(), 2u);
    EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

// -------------------------------------------------------------- parallel_for

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, JobsOneBypassesThePoolEntirely) {
    const bool pool_before = shared_pool_created();
    std::set<std::thread::id> ids;
    parallel_for(64, [&](std::size_t) { ids.insert(std::this_thread::get_id()); }, 1);
    EXPECT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
    // jobs=1 must not instantiate the shared pool.
    EXPECT_EQ(shared_pool_created(), pool_before);
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
    parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 8);
}

TEST(ParallelFor, PropagatesTheSmallestFailingIndex) {
    const auto thrower = [](std::size_t i) {
        if (i == 42 || i == 137) throw std::runtime_error("boom " + std::to_string(i));
    };
    for (std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        try {
            parallel_for(256, thrower, jobs);
            FAIL() << "expected an exception at jobs=" << jobs;
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "boom 42") << "jobs=" << jobs;
        }
    }
}

TEST(ParallelFor, NestedRegionsSerializeInsteadOfDeadlocking) {
    std::vector<std::atomic<int>> hits(16 * 16);
    parallel_for(16, [&](std::size_t outer) {
        EXPECT_TRUE(in_parallel_region());
        parallel_for(16, [&](std::size_t inner) {
            hits[outer * 16 + inner].fetch_add(1);
        }, 8);
    }, 4);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// -------------------------------------------------------------- parallel_map

TEST(ParallelMap, PreservesInputOrder) {
    std::vector<int> items(500);
    for (std::size_t i = 0; i < items.size(); ++i) items[i] = static_cast<int>(i);
    const auto squares = parallel_map(items, [](int v) { return v * v; }, 8);
    ASSERT_EQ(squares.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(squares[i], static_cast<int>(i * i));
}

TEST(ParallelMap, ResultTypeNeedsNoDefaultConstructor) {
    struct NoDefault {
        explicit NoDefault(int v) : value(v) {}
        int value;
    };
    const std::vector<int> items{1, 2, 3, 4, 5};
    const auto out = parallel_map(items, [](int v) { return NoDefault(v * 10); }, 4);
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out[3].value, 40);
}

// -------------------------------------------------------------- default_jobs

TEST(DefaultJobs, OverrideWinsAndClears) {
    set_default_jobs(3);
    EXPECT_EQ(default_jobs(), 3u);
    set_default_jobs(0);
    EXPECT_GE(default_jobs(), 1u);
}

// ------------------------------------------------------- WorkloadRepository

TEST(WorkloadRepository, SimulatesTheSuiteExactlyOnce) {
    WorkloadRepository repo;
    const std::size_t kernels = kernel_suite().size();
    const auto first = repo.suite();
    EXPECT_EQ(first.size(), kernels);
    EXPECT_EQ(repo.simulation_count(), kernels);

    // Repeated suite and individual requests hit the cache.
    const auto second = repo.suite();
    const auto fir = repo.run("fir");
    EXPECT_EQ(repo.simulation_count(), kernels);
    for (std::size_t i = 0; i < kernels; ++i)
        EXPECT_EQ(first[i].get(), second[i].get()) << "artifact not shared at " << i;

    // The individual request hands out the same shared artifact.
    bool found = false;
    for (const auto& run : first) found = found || run.get() == fir.get();
    EXPECT_TRUE(found);
}

TEST(WorkloadRepository, FetchVariantSupersetServesPlainRequests) {
    WorkloadRepository repo;
    const auto with_fetch = repo.run("crc32", /*fetch=*/true);
    EXPECT_FALSE(with_fetch->result.fetch_stream.empty());
    EXPECT_EQ(repo.simulation_count(), 1u);
    // The plain request is satisfied from the with-fetch artifact.
    const auto plain = repo.run("crc32", /*fetch=*/false);
    EXPECT_EQ(plain.get(), with_fetch.get());
    EXPECT_EQ(repo.simulation_count(), 1u);
}

TEST(WorkloadRepository, UnknownKernelThrowsWithoutCaching) {
    WorkloadRepository repo;
    EXPECT_THROW(repo.run("no-such-kernel"), Error);
    EXPECT_EQ(repo.simulation_count(), 0u);
}

TEST(WorkloadRepository, ArtifactsMatchADirectSimulation) {
    WorkloadRepository repo;
    const auto artifact = repo.run("biquad");
    const RunResult direct = run_kernel(kernel_by_name("biquad"));
    EXPECT_EQ(artifact->result.output, direct.output);
    EXPECT_EQ(artifact->result.instructions, direct.instructions);
    EXPECT_EQ(artifact->result.data_trace.size(), direct.data_trace.size());
}

// -------------------------------------------------- determinism, 1 vs N jobs

void expect_identical(const FlowComparison& a, const FlowComparison& b) {
    EXPECT_EQ(a.monolithic.total(), b.monolithic.total());
    EXPECT_EQ(a.partitioned.energy.total(), b.partitioned.energy.total());
    EXPECT_EQ(a.clustered.energy.total(), b.clustered.energy.total());
    EXPECT_EQ(a.clustering_savings_pct(), b.clustering_savings_pct());
    EXPECT_EQ(a.partitioned.solution.arch.num_banks(), b.partitioned.solution.arch.num_banks());
    EXPECT_EQ(a.clustered.solution.arch.num_banks(), b.clustered.solution.arch.num_banks());
}

TEST(Determinism, CompareAllIsBitIdenticalAcrossJobCounts) {
    WorkloadRepository repo;
    const auto runs = repo.suite();
    std::vector<const MemTrace*> traces;
    for (const auto& run : runs) traces.push_back(&run->result.data_trace);

    FlowParams fp;
    fp.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(fp);

    const auto serial = flow.compare_all(traces, ClusterMethod::Frequency, 1);
    const auto threaded = flow.compare_all(traces, ClusterMethod::Frequency, 8);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        expect_identical(serial[i], threaded[i]);
        // And both match the plain single-trace entry point.
        const FlowComparison direct = flow.compare(*traces[i], ClusterMethod::Frequency);
        expect_identical(serial[i], direct);
    }
}

TEST(Determinism, StudySuiteIsBitIdenticalAcrossJobCounts) {
    // Two media kernels keep the test fast; study_kernel re-simulates.
    const std::vector<Kernel> kernels{kernel_by_name("fir"), kernel_by_name("rle")};
    StudyParams params;
    params.flow.constraints.max_banks = 4;

    const auto serial = study_suite(kernels, params, 1);
    const auto threaded = study_suite(kernels, params, 8);
    ASSERT_EQ(serial.size(), kernels.size());
    ASSERT_EQ(threaded.size(), kernels.size());
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        EXPECT_EQ(serial[i].name, threaded[i].name);
        EXPECT_EQ(serial[i].clustering_savings_pct(), threaded[i].clustering_savings_pct());
        EXPECT_EQ(serial[i].compression_savings_pct(), threaded[i].compression_savings_pct());
        EXPECT_EQ(serial[i].encoding_reduction_pct(), threaded[i].encoding_reduction_pct());
        EXPECT_EQ(serial[i].memory.clustered.energy.total(),
                  threaded[i].memory.clustered.energy.total());
        EXPECT_EQ(serial[i].encoding.encoded_transitions,
                  threaded[i].encoding.encoded_transitions);

        // study_kernel itself under a MEMOPT_JOBS-style global override.
        const JobsGuard guard(8);
        const StudyReport direct = study_kernel(kernels[i], params);
        EXPECT_EQ(direct.clustering_savings_pct(), serial[i].clustering_savings_pct());
        EXPECT_EQ(direct.compression_savings_pct(), serial[i].compression_savings_pct());
        EXPECT_EQ(direct.encoding_reduction_pct(), serial[i].encoding_reduction_pct());
    }
}

TEST(Determinism, GateSearchIsBitIdenticalAcrossJobCounts) {
    WorkloadRepository repo;
    const auto run = repo.run("qsort", /*fetch=*/true);
    const auto& stream = run->result.fetch_stream;

    TransformSearchResult serial_full, threaded_full;
    TransformSearchResult serial_one, threaded_one;
    {
        const JobsGuard guard(1);
        serial_full = search_transform(stream, {.max_gates = 8});
        serial_one = best_single_gate(stream);
    }
    {
        const JobsGuard guard(8);
        threaded_full = search_transform(stream, {.max_gates = 8});
        threaded_one = best_single_gate(stream);
    }
    EXPECT_EQ(serial_full.encoded_transitions, threaded_full.encoded_transitions);
    EXPECT_EQ(serial_full.transform.gate_count(), threaded_full.transform.gate_count());
    EXPECT_EQ(serial_one.encoded_transitions, threaded_one.encoded_transitions);
    EXPECT_EQ(serial_one.transform.gate_count(), threaded_one.transform.gate_count());
}

}  // namespace
}  // namespace memopt
