// Fixture: rule D3 — floating-point accumulation into captured state inside
// a parallel region: the summation order depends on thread scheduling.
#include <cstddef>

void parallel_for(std::size_t n, void (*fn)(std::size_t));

double racy_sum(std::size_t n, const double* values) {
    double total = 0.0;
    parallel_for(n, [&](std::size_t i) {
        total += values[i];
    });
    return total;
}
