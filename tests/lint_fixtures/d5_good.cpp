// Fixture: D5-clean variants — shard-local accumulators, atomics, and a
// lock-protected tally with the `guarded` annotation.
#include <atomic>
#include <cstddef>
#include <mutex>

void parallel_for(std::size_t n, void (*fn)(std::size_t));

extern std::mutex g_mutex;

std::size_t clean_counts(std::size_t n, const int* v, std::size_t* shard_hits) {
    std::atomic<std::size_t> hits{0};
    std::size_t guarded_total = 0;
    parallel_for(n, [&](std::size_t i) {
        std::size_t local = 0;      // shard-local: declared inside the region
        if (v[i] > 0) ++local;
        shard_hits[i] = local;
        hits.fetch_add(local, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(g_mutex);
        // memopt-lint: guarded -- g_mutex held just above
        guarded_total += local;
    });
    return hits.load() + guarded_total;
}
