// Fixture: rule D1 — clean patterns: annotated collection with a rationale,
// sorted consumption, and non-iterating lookups.
#include <algorithm>
#include <unordered_map>
#include <vector>

int collect_sorted() {
    std::unordered_map<int, int> histogram;
    histogram[3] = 1;
    std::vector<std::pair<int, int>> ranked;
    // memopt-lint: order-independent -- ranked is sorted by key immediately
    // below, before any order-sensitive consumption.
    for (const auto& [k, v] : histogram) ranked.emplace_back(k, v);
    std::sort(ranked.begin(), ranked.end());
    int checksum = 0;
    for (const auto& [k, v] : ranked) checksum = checksum * 31 + k + v;
    return checksum;
}

int lookup_only(int key) {
    std::unordered_map<int, int> cache;
    cache[1] = 2;
    return cache.count(key) != 0 ? cache.at(key) : 0;
}
