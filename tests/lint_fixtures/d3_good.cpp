// Fixture: rule D3 — clean pattern: shard-local partials inside the lambda,
// reduced in shard order after the parallel region completes.
#include <cstddef>

void parallel_for(std::size_t n, void (*fn)(std::size_t));

double sharded_sum(std::size_t n, const double* values, double* partials) {
    parallel_for(n, [&](std::size_t shard) {
        double partial = 0.0;
        partial += values[shard];
        partials[shard] = partial;
    });
    double total = 0.0;
    for (std::size_t s = 0; s < n; ++s) total += partials[s];
    return total;
}
