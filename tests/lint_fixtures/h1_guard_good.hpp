// Fixture: rule H1 — classic #ifndef include guard is accepted too.
#ifndef MEMOPT_TESTS_LINT_FIXTURES_H1_GUARD_GOOD_HPP
#define MEMOPT_TESTS_LINT_FIXTURES_H1_GUARD_GOOD_HPP

#include <vector>

inline std::vector<int> guarded_vec() { return {}; }

#endif  // MEMOPT_TESTS_LINT_FIXTURES_H1_GUARD_GOOD_HPP
