// Fixture: rule D2 — ambient entropy sources outside support/rng.
#include <cstdlib>
#include <ctime>
#include <random>

unsigned ambient_seed() {
    std::random_device rd;
    unsigned seed = static_cast<unsigned>(rd()) ^ static_cast<unsigned>(time(nullptr));
    srand(seed);
    return seed ^ static_cast<unsigned>(rand());
}
