// Fixture header: declares helpers nothing in i1_bad.cpp refers to. It
// shares the `fixture` namespace with i1_used.hpp on purpose — re-opening
// a namespace is not a provided symbol, so the shared name must not make
// this include look used.
#pragma once

namespace fixture {

struct UnusedHelper {
    int weight = 0;
};

int unused_freestanding(int weight_in);

}  // namespace fixture
