// Fixture: rule I1 — the i1_util.hpp include is unused (no declared symbol
// referenced, nothing from its closure needed); i1_used.hpp is not.
#include "i1_used.hpp"
#include "i1_util.hpp"

int consume() {
    fixture::UsedThing thing;
    thing.value = 7;
    return thing.value;
}
