﻿// Fixture: tokenizer edge cases that must stay finding-free. The file
// starts with a UTF-8 BOM; strings below carry backslash continuations,
// raw-string delimiters, and rule-trigger lookalikes that may never leak
// into identifier tokens.
const char* spliced = "call rand() and \
srand(1) from a string\
 with two continuations";
// A comment continuation also hides the next physical line: rand() \
   srand(time(nullptr));
const char* raw = R"lint(std::ofstream os("x"); assert(rand());)lint";
const char* raw_parens = R"(time(nullptr) -- an unmatched )" ")\" inside";
const char* empty_raw = R"()";

int answer() { return 42; }
