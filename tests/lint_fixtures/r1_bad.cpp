// Fixture: rule R1 — final artifacts written in place instead of through
// the durable layer (atomic_write / AtomicOstream).
#include <cstdio>
#include <fstream>

void dump_report(const char* path) {
    std::ofstream os(path);
    os << "results\n";
}

void dump_table(const char* path) {
    std::FILE* f = fopen(path, "w");
    if (f != nullptr) fclose(f);
}
