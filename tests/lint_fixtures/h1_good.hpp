// Fixture: rule H1 — clean header: #pragma once, fully qualified names.
#pragma once

#include <vector>

inline std::vector<int> empty_vec() { return {}; }
