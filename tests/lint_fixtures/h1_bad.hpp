// Fixture: rule H1 — header with no include guard and a header-scope
// using namespace.
#include <vector>

using namespace std;

inline vector<int> empty_vec() { return {}; }
