// Fixture: rule L2 — the second half of the include cycle.
#pragma once

#include "l2_a.hpp"

namespace fixture {

struct NodeB {
    NodeA* peer = nullptr;
};

}  // namespace fixture
