// Fixture: rule A1 — clean patterns: the project macros, static_assert, and
// mentions of assert in comments or strings (assert(this) is a comment).
#include <string>

#define MEMOPT_ASSERT(cond) ((void)(cond))

int clamp_positive(int v) {
    MEMOPT_ASSERT(v >= 0);
    static_assert(sizeof(int) >= 4, "ILP32 or wider");
    return v;
}

bool string_mention(const std::string& s) { return s == "assert(x)"; }
