﻿// Fixture: line accounting through the same edge cases — the BOM, spliced
// strings, and raw strings above the real finding must not shift the
// reported line number of the rand() call below.
const char* spliced = "rand() in a string \
spanning physical lines";
const char* raw = R"x(assert(rand()))x";

int seed() {
    return rand();
}
