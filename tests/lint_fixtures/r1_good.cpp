// Fixture: rule R1 — clean patterns: the durable staging API, reads, and
// an annotated scratch write that is not a final artifact.
#include <fstream>
#include <string>

void publish_report(const std::string& path, const std::string& doc) {
    atomic_write(path, doc);
}

void publish_rows(const std::string& path) {
    AtomicOstream os;
    if (os.open_staged(path)) {
        os << "rows\n";
        os.commit();
    }
}

std::string slurp(const std::string& path) {
    std::ifstream in(path);  // reads are not artifact writes
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void scratch(const std::string& dir) {
    // memopt-lint: durable-write -- throwaway probe file, deleted below
    std::ofstream os(dir + "/probe.tmp");
    os << "x";
}
