// Fixture: rule L2 — mutually-including pair (cycle anchored here, the
// lexicographically smallest member).
#pragma once

#include "l2_b.hpp"

namespace fixture {

struct NodeA {
    NodeB* peer = nullptr;
};

}  // namespace fixture
