// Fixture header: declares the one type i1_bad.cpp actually uses.
#pragma once

namespace fixture {

struct UsedThing {
    int value = 0;
};

}  // namespace fixture
