// Fixture: rule D2 — clean patterns: explicit seeds, string-literal mentions,
// and member calls that merely share a name with the C seed functions.
#include <cstdint>
#include <string>

struct FixtureRng {
    explicit FixtureRng(std::uint64_t seed) : state_(seed) {}
    std::uint64_t next_u64() { return state_ += 0x9E3779B97F4A7C15ULL; }
    std::uint64_t state_;
};

std::uint64_t seeded(std::uint64_t seed) {
    FixtureRng rng(seed);
    return rng.next_u64();
}

bool mentions_in_strings(const std::string& s) {
    return s == "expected 'rand(seed)' or 'srand(x)' or 'time(now)'";
}

// Member calls that merely share a name with the C seed functions are
// unrelated APIs (the Clock type lives elsewhere; fixtures never compile).
double member_call(const ExternalClock& c) { return c.time(3); }
