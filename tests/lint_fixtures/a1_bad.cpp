// Fixture: rule A1 — raw assert() vanishes under NDEBUG.
#include <cassert>

int clamp_positive(int v) {
    assert(v >= 0);
    return v;
}
