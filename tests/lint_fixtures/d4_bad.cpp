// Fixture: rule D4 — atomic floating point accumulates in scheduling order
// by construction. Integer atomics remain fine.
#include <atomic>

std::atomic<double> racy_energy{0.0};
std::atomic<float> racy_ratio{0.0f};
std::atomic<long double> racy_wide{0.0L};
std::atomic<int> fine_counter{0};
std::atomic<unsigned long> fine_wide_counter{0};
