// Fixture: rule D1 — unordered-container iteration feeding results with no
// sort and no annotation. Never compiled; tokenized by test_lint only.
#include <unordered_map>
#include <vector>

int collect() {
    std::unordered_map<int, int> histogram;
    histogram[3] = 1;
    int checksum = 0;
    for (const auto& [k, v] : histogram) {
        checksum = checksum * 31 + k + v;
    }
    std::vector<std::pair<int, int>> ranked(histogram.begin(), histogram.end());
    return checksum + static_cast<int>(ranked.size());
}
