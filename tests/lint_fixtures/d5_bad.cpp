// Fixture: rule D5 — compound mutation of captured shared state inside a
// parallel region: a data race even when the arithmetic itself is exact.
#include <cstddef>

void parallel_for(std::size_t n, void (*fn)(std::size_t));
void submit(void (*task)());

struct Tally {
    std::size_t done_ = 0;
    void run();
};

int racy_counts(std::size_t n, const int* v) {
    std::size_t hits = 0;
    long total = 0;
    parallel_for(n, [&](std::size_t i) {
        if (v[i] > 0) ++hits;
        total += v[i];
    });
    return static_cast<int>(hits + static_cast<std::size_t>(total));
}

void Tally::run() {
    submit([this] { done_ += 1; });
}
