// End-to-end certification of the AR32 toolchain: every bundled kernel is
// re-implemented in plain C++ here (using the same deterministic input
// generators), and the simulator's checksums must match exactly. A pass
// certifies assembler, encoder, decoder and simulator semantics together.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "isa/assembler.hpp"
#include "sim/kernels.hpp"

namespace memopt {
namespace {

std::vector<std::uint8_t> words_to_bytes(const std::vector<std::uint32_t>& words) {
    std::vector<std::uint8_t> bytes;
    bytes.reserve(words.size() * 4);
    for (std::uint32_t w : words) {
        bytes.push_back(static_cast<std::uint8_t>(w));
        bytes.push_back(static_cast<std::uint8_t>(w >> 8));
        bytes.push_back(static_cast<std::uint8_t>(w >> 16));
        bytes.push_back(static_cast<std::uint8_t>(w >> 24));
    }
    return bytes;
}

std::vector<std::uint32_t> kernel_outputs(const std::string& name) {
    return run_kernel(kernel_by_name(name)).output;
}

TEST(Kernels, FirChecksum) {
    const auto in = asm_smooth_words(288, 161, 1048576);
    const auto coef = asm_random_words(32, 162);
    std::uint32_t cks = 0;
    for (std::size_t i = 0; i < 256; ++i) {
        std::uint32_t acc = 0;
        for (std::size_t k = 0; k < 32; ++k) {
            const auto x = static_cast<std::uint32_t>(static_cast<std::int32_t>(in[i + k]) >> 16);
            const auto c = static_cast<std::uint32_t>(static_cast<std::int32_t>(coef[k]) >> 26);
            acc += x * c;
        }
        cks += static_cast<std::uint32_t>(static_cast<std::int32_t>(acc) >> 6);
    }
    EXPECT_EQ(kernel_outputs("fir"), std::vector<std::uint32_t>{cks});
}

TEST(Kernels, BiquadChecksum) {
    const auto in = asm_smooth_words(512, 177, 1048576);
    const std::int32_t c1[5] = {1024, 2048, 1024, 1638, -819};
    const std::int32_t c2[5] = {512, 1024, 512, 1229, -410};
    std::uint32_t s1[4] = {0, 0, 0, 0};  // x1, x2, y1, y2
    std::uint32_t s2[4] = {0, 0, 0, 0};
    auto section = [](const std::int32_t* c, std::uint32_t* s, std::uint32_t x) {
        std::uint32_t acc = static_cast<std::uint32_t>(c[0]) * x;
        acc += static_cast<std::uint32_t>(c[1]) * s[0];
        acc += static_cast<std::uint32_t>(c[2]) * s[1];
        acc += static_cast<std::uint32_t>(c[3]) * s[2];
        acc += static_cast<std::uint32_t>(c[4]) * s[3];
        const auto y = static_cast<std::uint32_t>(static_cast<std::int32_t>(acc) >> 12);
        s[1] = s[0];
        s[0] = x;
        s[3] = s[2];
        s[2] = y;
        return y;
    };
    std::uint32_t cks = 0;
    for (std::size_t i = 0; i < 512; ++i) {
        auto x = static_cast<std::uint32_t>(static_cast<std::int32_t>(in[i]) >> 16);
        x = section(c1, s1, x);
        x = section(c2, s2, x);
        cks += x;
    }
    EXPECT_EQ(kernel_outputs("biquad"), std::vector<std::uint32_t>{cks});
}

TEST(Kernels, MatmulChecksum) {
    const auto a = asm_random_words(256, 201);
    const auto b = asm_random_words(256, 202);
    std::uint32_t cks = 0;
    for (std::size_t i = 0; i < 16; ++i) {
        for (std::size_t j = 0; j < 16; ++j) {
            std::uint32_t acc = 0;
            for (std::size_t k = 0; k < 16; ++k) acc += a[i * 16 + k] * b[k * 16 + j];
            cks += acc;
        }
    }
    EXPECT_EQ(kernel_outputs("matmul"), std::vector<std::uint32_t>{cks});
}

TEST(Kernels, Crc32Checksum) {
    const auto msg = words_to_bytes(asm_smooth_words(1024, 195, 5000));
    std::uint32_t table[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) c = (c & 1) ? (c >> 1) ^ 0xEDB88320u : c >> 1;
        table[i] = c;
    }
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::uint8_t byte : msg) crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFFu];
    crc = ~crc;
    EXPECT_EQ(kernel_outputs("crc32"), std::vector<std::uint32_t>{crc});
}

TEST(Kernels, QsortChecksum) {
    auto arr = asm_random_words(256, 333);
    std::sort(arr.begin(), arr.end());
    std::uint32_t cks = 0;
    for (std::size_t i = 0; i < arr.size(); ++i)
        cks += arr[i] * static_cast<std::uint32_t>(i + 1);
    EXPECT_EQ(kernel_outputs("qsort"), std::vector<std::uint32_t>{cks});
}

TEST(Kernels, HistogramChecksum) {
    const auto data = words_to_bytes(asm_smooth_words(1024, 741, 100));
    std::uint32_t bins[256] = {};
    for (std::uint8_t byte : data) ++bins[byte];
    std::uint32_t cks = 0;
    for (std::uint32_t i = 0; i < 256; ++i) cks += bins[i] * (i + 1);
    EXPECT_EQ(kernel_outputs("histogram"), std::vector<std::uint32_t>{cks});
}

TEST(Kernels, StrsearchCount) {
    const auto src = words_to_bytes(asm_random_words(512, 911));
    std::vector<std::uint8_t> text(2048);
    for (std::size_t i = 0; i < text.size(); ++i) text[i] = src[i] & 3;
    const std::uint8_t pattern[4] = {1, 2, 3, 0};
    std::uint32_t count = 0;
    for (std::size_t i = 0; i < 2045; ++i) {
        bool match = true;
        for (std::size_t j = 0; j < 4 && match; ++j) match = text[i + j] == pattern[j];
        count += match;
    }
    EXPECT_EQ(kernel_outputs("strsearch"), std::vector<std::uint32_t>{count});
}

TEST(Kernels, RleLengthAndChecksum) {
    const auto raw = words_to_bytes(asm_random_words(1024, 555));
    std::vector<std::uint8_t> src(4096);
    for (std::size_t i = 0; i < src.size(); ++i) src[i] = raw[i] & 1;
    std::vector<std::uint8_t> encoded;
    std::size_t i = 0;
    while (i < src.size()) {
        std::size_t run = 1;
        while (i + run < src.size() && run < 255 && src[i + run] == src[i]) ++run;
        encoded.push_back(static_cast<std::uint8_t>(run));
        encoded.push_back(src[i]);
        i += run;
    }
    std::uint32_t byte_sum = 0;
    for (std::uint8_t byte : encoded) byte_sum += byte;
    const std::vector<std::uint32_t> expected{static_cast<std::uint32_t>(encoded.size()),
                                              byte_sum};
    EXPECT_EQ(kernel_outputs("rle"), expected);
}

TEST(Kernels, Conv3x3Checksum) {
    const auto raw = asm_smooth_words(1024, 808, 50000000);
    std::int32_t img[1024];
    for (std::size_t p = 0; p < 1024; ++p) img[p] = static_cast<std::int32_t>(raw[p]) >> 20;
    const std::int32_t kern[9] = {1, 2, 1, 2, 4, 2, 1, 2, 1};
    std::uint32_t cks = 0;
    for (std::size_t y = 0; y < 30; ++y) {
        for (std::size_t x = 0; x < 30; ++x) {
            std::uint32_t acc = 0;
            for (std::size_t ky = 0; ky < 3; ++ky) {
                for (std::size_t kx = 0; kx < 3; ++kx) {
                    acc += static_cast<std::uint32_t>(img[(y + ky) * 32 + x + kx]) *
                           static_cast<std::uint32_t>(kern[ky * 3 + kx]);
                }
            }
            cks += acc;
        }
    }
    EXPECT_EQ(kernel_outputs("conv3x3"), std::vector<std::uint32_t>{cks});
}

TEST(Kernels, ListchaseClosedForm) {
    // 8192 chase steps over a full-period 1024-node cycle visit every node
    // exactly 8 times: sum = 8 * (0 + 1 + ... + 1023).
    EXPECT_EQ(kernel_outputs("listchase"),
              std::vector<std::uint32_t>{8u * (1023u * 1024u / 2u)});
}

TEST(Kernels, Fft16Checksum) {
    const auto raw = asm_smooth_words(32, 404, 80000000);
    const std::int32_t cos_q12[8] = {4096, 3784, 2896, 1567, 0, -1567, -2896, -3784};
    const std::int32_t sin_q12[8] = {0, 1567, 2896, 3784, 4096, 3784, 2896, 1567};
    const unsigned rev[16] = {0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15};

    std::uint32_t acc[32] = {};
    for (int iter = 0; iter < 32; ++iter) {
        std::uint32_t buf[32];
        for (unsigned i = 0; i < 16; ++i) {
            buf[2 * i] = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(raw[2 * rev[i]]) >> 20);
            buf[2 * i + 1] = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(raw[2 * rev[i] + 1]) >> 20);
        }
        unsigned stride = 8;
        for (unsigned m = 2; m <= 16; m <<= 1) {
            const unsigned half = m / 2;
            for (unsigned k = 0; k < 16; k += m) {
                for (unsigned j = 0; j < half; ++j) {
                    const auto w_re = static_cast<std::uint32_t>(cos_q12[j * stride]);
                    const auto w_im = static_cast<std::uint32_t>(sin_q12[j * stride]);
                    std::uint32_t& a_re = buf[2 * (k + j)];
                    std::uint32_t& a_im = buf[2 * (k + j) + 1];
                    std::uint32_t& b_re = buf[2 * (k + j + half)];
                    std::uint32_t& b_im = buf[2 * (k + j + half) + 1];
                    const std::uint32_t t_re = static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(w_re * b_re + w_im * b_im) >> 12);
                    const std::uint32_t t_im = static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(w_re * b_im - w_im * b_re) >> 12);
                    const std::uint32_t u_re = a_re;
                    const std::uint32_t u_im = a_im;
                    a_re = u_re + t_re;
                    a_im = u_im + t_im;
                    b_re = u_re - t_re;
                    b_im = u_im - t_im;
                }
            }
            stride >>= 1;
        }
        for (unsigned w = 0; w < 32; ++w) acc[w] += buf[w];
    }
    std::uint32_t cks = 0;
    for (unsigned w = 0; w < 32; ++w) cks += acc[w];
    EXPECT_EQ(kernel_outputs("fft16"), std::vector<std::uint32_t>{cks});
}

TEST(Kernels, DitherChecksum) {
    const auto img = words_to_bytes(asm_smooth_words(256, 606, 3000));
    std::uint32_t err_cur[66] = {};
    std::uint32_t err_next[66] = {};
    std::uint32_t cks = 0;
    for (unsigned y = 0; y < 16; ++y) {
        for (unsigned x = 0; x < 64; ++x) {
            const std::uint32_t v = img[y * 64 + x] + err_cur[x + 1];
            const std::uint32_t out =
                static_cast<std::int32_t>(v) >= 128 ? 255u : 0u;  // signed compare as in asm
            const std::uint32_t e = v - out;
            auto scaled = [&](std::uint32_t factor) {
                return static_cast<std::uint32_t>(
                    static_cast<std::int32_t>(e * factor) >> 4);
            };
            err_cur[x + 2] += scaled(7);
            err_next[x] += scaled(3);
            err_next[x + 1] += scaled(5);
            err_next[x + 2] += static_cast<std::uint32_t>(static_cast<std::int32_t>(e) >> 4);
            cks += out;
        }
        for (unsigned i = 0; i < 66; ++i) {
            err_cur[i] = err_next[i];
            err_next[i] = 0;
        }
    }
    EXPECT_EQ(kernel_outputs("dither"), std::vector<std::uint32_t>{cks});
}

// ------------------------------------------------------- suite hygiene ----

TEST(KernelSuite, NamesAreUniqueAndLookupWorks) {
    const auto& suite = kernel_suite();
    EXPECT_EQ(suite.size(), 12u);
    for (const Kernel& k : suite) {
        EXPECT_EQ(kernel_by_name(k.name).source, k.source);
        EXPECT_FALSE(k.description.empty());
    }
    EXPECT_THROW(kernel_by_name("nope"), Error);
}

class KernelRuns : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelRuns, ProducesTraceWithinMemoryAndTerminates) {
    const Kernel& k = kernel_suite()[GetParam()];
    CpuConfig cfg;
    cfg.record_fetch_stream = true;
    const RunResult r = run_kernel(k, cfg);
    EXPECT_FALSE(r.output.empty());
    EXPECT_GT(r.instructions, 1000u);
    EXPECT_LT(r.instructions, 1'000'000u);
    EXPECT_FALSE(r.data_trace.empty());
    EXPECT_LT(r.data_trace.max_addr(), cfg.mem_size);
    // Data accesses never touch the code region (Harvard layout).
    EXPECT_GE(r.data_trace.min_addr(), 0x10000u);
    EXPECT_EQ(r.fetch_stream.size(), r.instructions);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelRuns, ::testing::Range<std::size_t>(0, 12),
                         [](const auto& info) { return kernel_suite()[info.param].name; });

TEST(KernelRuns, DeterministicAcrossRuns) {
    for (const Kernel& k : kernel_suite()) {
        const RunResult a = run_kernel(k);
        const RunResult b = run_kernel(k);
        EXPECT_EQ(a.output, b.output) << k.name;
        EXPECT_EQ(a.instructions, b.instructions) << k.name;
        EXPECT_EQ(a.data_trace.size(), b.data_trace.size()) << k.name;
    }
}

}  // namespace
}  // namespace memopt
