// Tests for the core facades: profile merging, the KernelStudy entry point,
// and the report helpers' edge cases.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "core/app_builder.hpp"
#include "core/study.hpp"
#include "sched/scheduler.hpp"
#include "support/assert.hpp"
#include "trace/profile.hpp"

namespace memopt {
namespace {

// --------------------------------------------------------------- merge ----

TEST(ProfileMerge, SumsCountsAcrossProfiles) {
    BlockProfile a(256, 4);
    a.add_counts(0, 10, 5);
    a.add_counts(2, 1, 1);
    BlockProfile b(256, 8);  // larger span
    b.add_counts(0, 3, 0);
    b.add_counts(7, 100, 0);
    const std::vector<BlockProfile> inputs{a, b};
    const BlockProfile merged = BlockProfile::merge(inputs);
    EXPECT_EQ(merged.num_blocks(), 8u);
    EXPECT_EQ(merged.counts(0).reads, 13u);
    EXPECT_EQ(merged.counts(0).writes, 5u);
    EXPECT_EQ(merged.counts(2).reads, 1u);
    EXPECT_EQ(merged.counts(7).reads, 100u);
    EXPECT_EQ(merged.total_accesses(), a.total_accesses() + b.total_accesses());
}

TEST(ProfileMerge, WeightsScaleContributions) {
    BlockProfile a(256, 2);
    a.add_counts(0, 10, 10);
    BlockProfile b(256, 2);
    b.add_counts(1, 10, 0);
    const std::vector<BlockProfile> inputs{a, b};
    const std::vector<double> weights{2.0, 0.5};
    const BlockProfile merged = BlockProfile::merge(inputs, weights);
    EXPECT_EQ(merged.counts(0).reads, 20u);
    EXPECT_EQ(merged.counts(0).writes, 20u);
    EXPECT_EQ(merged.counts(1).reads, 5u);
}

TEST(ProfileMerge, ValidatesInputs) {
    EXPECT_THROW(BlockProfile::merge({}), Error);
    BlockProfile a(256, 2);
    BlockProfile b(512, 2);
    const std::vector<BlockProfile> mismatched{a, b};
    EXPECT_THROW(BlockProfile::merge(mismatched), Error);
    const std::vector<BlockProfile> ok{a};
    const std::vector<double> wrong_weights{1.0, 2.0};
    EXPECT_THROW(BlockProfile::merge(ok, wrong_weights), Error);
    const std::vector<double> negative{-1.0};
    EXPECT_THROW(BlockProfile::merge(ok, negative), Error);
}

TEST(ProfileMerge, SingleProfileIsIdentityOperation) {
    BlockProfile a(256, 4);
    a.add_counts(1, 7, 3);
    const std::vector<BlockProfile> one{a};
    const BlockProfile merged = BlockProfile::merge(one);
    for (std::size_t blk = 0; blk < 4; ++blk) {
        EXPECT_EQ(merged.counts(blk).reads, a.counts(blk).reads);
        EXPECT_EQ(merged.counts(blk).writes, a.counts(blk).writes);
    }
}

// --------------------------------------------------------------- study ----

TEST(KernelStudy, ProducesAllSections) {
    StudyParams params;
    params.flow.constraints.max_banks = 4;
    const StudyReport report = study_kernel(kernel_by_name("histogram"), params);
    EXPECT_EQ(report.name, "histogram");
    // 1B-1 section.
    EXPECT_GT(report.memory.monolithic.total(), 0.0);
    EXPECT_LE(report.memory.partitioned.energy.total(), report.memory.monolithic.total());
    // 1B-2 section.
    EXPECT_GT(report.compression_baseline.energy.total(), 0.0);
    EXPECT_LE(report.compression.actual_traffic_bytes,
              report.compression_baseline.actual_traffic_bytes);
    // 1B-3 section.
    EXPECT_GT(report.encoding.original_transitions, 0u);
    EXPECT_GT(report.encoding_reduction_pct(), 0.0);
    // Derived metrics are self-consistent.
    EXPECT_NEAR(report.clustering_savings_pct(),
                report.memory.clustering_savings_pct(), 1e-12);
}

TEST(KernelStudy, ExternalTraceWithoutFetchStream) {
    const RunResult run = run_kernel(kernel_by_name("qsort"));
    const StudyReport report =
        study_trace("external", run.data_trace, {}, 0x10000, {}, StudyParams{});
    EXPECT_EQ(report.encoding.original_transitions, 0u);  // section skipped
    EXPECT_GT(report.memory.monolithic.total(), 0.0);
}

TEST(KernelStudy, RejectsEmptyTrace) {
    EXPECT_THROW(study_trace("empty", MemTrace{}, {}, 0, {}, StudyParams{}), Error);
}

TEST(KernelStudy, PlatformChoiceMatters) {
    StudyParams vliw;
    vliw.platform = vliw_platform();
    StudyParams risc;
    risc.platform = risc_platform();
    const Kernel& kernel = kernel_by_name("biquad");
    const StudyReport a = study_kernel(kernel, vliw);
    const StudyReport b = study_kernel(kernel, risc);
    EXPECT_NE(a.compression_baseline.cache_stats.misses(),
              b.compression_baseline.cache_stats.misses());
}

// --------------------------------------------------------- app builder ----

TEST(AppBuilder, BuildsValidPipelineFromKernels) {
    const Application app = application_from_kernels({"fir", "histogram"});
    EXPECT_EQ(app.phases.size(), 2u);
    EXPECT_EQ(app.num_contexts, 2u);
    EXPECT_EQ(app.phases[0].name, "fir");
    EXPECT_EQ(app.phases[1].context, 1u);
    EXPECT_NO_THROW(app.validate());
    // The fir phase's hottest data sets must include the input and the
    // coefficient table (48.5% of accesses each).
    bool saw_fin = false;
    for (const KernelUse& use : app.phases[0].uses)
        saw_fin = saw_fin || app.datasets[use.dataset].name == "fir.fin";
    EXPECT_TRUE(saw_fin);
}

TEST(AppBuilder, RespectsDatasetCap) {
    AppBuildOptions options;
    options.max_datasets_per_kernel = 2;
    const Application app = application_from_kernels({"conv3x3"}, options);
    EXPECT_LE(app.phases[0].uses.size(), 2u);
}

TEST(AppBuilder, SchedulerImprovesKernelPipelines) {
    const Application app = application_from_kernels({"fir", "biquad", "fft16"});
    const ReconfArch arch;
    const double naive = evaluate_schedule(app, arch, naive_schedule(app, arch)).total();
    const double greedy = evaluate_schedule(app, arch, greedy_schedule(app, arch)).total();
    EXPECT_LT(greedy, naive);
}

TEST(AppBuilder, RejectsBadInputs) {
    EXPECT_THROW(application_from_kernels({}), Error);
    EXPECT_THROW(application_from_kernels({"no-such-kernel"}), Error);
}

// ------------------------------------------------------- report helpers ----

TEST(ReportHelpers, ComparisonTableRejectsEmpty) {
    EXPECT_THROW(energy_comparison_table({}), Error);
}

TEST(ReportHelpers, BenchmarkTableValidatesShape) {
    EXPECT_THROW(benchmark_energy_table({"only-one"}, {}), Error);
    EXPECT_THROW(benchmark_energy_table({"a", "b"}, {{"row", {1.0}}}), Error);
}

}  // namespace
}  // namespace memopt
