// Integration tests: the full pipelines of every experiment run end-to-end
// on real kernel traces, and their headline properties hold.
#include <gtest/gtest.h>

#include "compress/diff_codec.hpp"
#include "compress/platform.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "encoding/baselines.hpp"
#include "encoding/search.hpp"
#include "energy/bus_model.hpp"
#include "sched/scheduler.hpp"
#include "sim/kernels.hpp"
#include "support/stats.hpp"

namespace memopt {
namespace {

FlowParams e1_params() {
    FlowParams fp;
    fp.block_size = 256;
    fp.constraints.max_banks = 4;
    return fp;
}

class KernelFlow : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelFlow, PartitioningPipelineIsSoundOnKernelTraces) {
    const Kernel& kernel = kernel_suite()[GetParam()];
    const RunResult run = run_kernel(kernel);
    const MemoryOptimizationFlow flow(e1_params());
    const FlowComparison cmp = flow.compare(run.data_trace, ClusterMethod::Frequency);

    // Partitioning never loses to monolithic (k=1 is in the search space).
    EXPECT_LE(cmp.partitioned.energy.total(), cmp.monolithic.total() * (1 + 1e-12));
    // The clustered architecture covers the same block space.
    EXPECT_EQ(cmp.clustered.solution.arch.num_blocks(),
              cmp.partitioned.solution.arch.num_blocks());
    // The remapped trace reproduces the clustered profile's bank loads:
    // total accesses are conserved under the bijection.
    const BlockProfile original = BlockProfile::from_trace(run.data_trace, 256);
    const BlockProfile remapped = cmp.clustered.map.apply(original);
    EXPECT_EQ(remapped.total_accesses(), original.total_accesses());
    EXPECT_GT(cmp.partitioning_savings_pct(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelFlow, ::testing::Range<std::size_t>(0, 12),
                         [](const auto& info) { return kernel_suite()[info.param].name; });

TEST(E1Headline, ClusteringBeatsPartitioningOnAverage) {
    // The reproduction headline (paper 1B-1: avg 25%, max 57%): with the E1
    // configuration, frequency clustering must deliver a solid average gain
    // over plain partitioning across the suite, with a high maximum.
    std::vector<double> savings;
    const MemoryOptimizationFlow flow(e1_params());
    for (const Kernel& kernel : kernel_suite()) {
        const RunResult run = run_kernel(kernel);
        savings.push_back(flow.compare(run.data_trace, ClusterMethod::Frequency)
                              .clustering_savings_pct());
    }
    const double avg = mean(savings);
    const double max = *std::max_element(savings.begin(), savings.end());
    EXPECT_GT(avg, 15.0) << "average clustering savings collapsed";
    EXPECT_GT(max, 40.0) << "maximum clustering savings collapsed";
    for (double s : savings) EXPECT_GT(s, 0.0);
}

TEST(E4Headline, CompressionSavesOnCompressibleKernels) {
    const DiffCodec codec;
    const PlatformModel platform = vliw_platform();
    for (const char* name : {"biquad", "conv3x3", "listchase"}) {
        const auto prog = assemble(kernel_by_name(name).source);
        const RunResult run = Cpu(CpuConfig{}).run(prog);
        const auto base = CompressedMemorySim(platform.config, nullptr)
                              .run(run.data_trace, prog.data, prog.data_base);
        const auto comp = CompressedMemorySim(platform.config, &codec)
                              .run(run.data_trace, prog.data, prog.data_base);
        const double base_path = base.energy.component("main_memory");
        const double comp_path =
            comp.energy.component("main_memory") + comp.energy.component("codec");
        EXPECT_GT(percent_savings(base_path, comp_path), 8.0) << name;
    }
}

TEST(E7Headline, TransformsBeatBaselinesOnEveryKernel) {
    for (const Kernel& kernel : kernel_suite()) {
        CpuConfig cfg;
        cfg.record_data_trace = false;
        cfg.record_fetch_stream = true;
        const RunResult run = run_kernel(kernel, cfg);
        const std::uint64_t raw = count_transitions(run.fetch_stream);
        const std::uint64_t bi = bus_invert_transitions(run.fetch_stream);
        const auto xform = search_transform(run.fetch_stream, {.max_gates = 16});
        EXPECT_LT(xform.encoded_transitions, raw) << kernel.name;
        EXPECT_LT(xform.encoded_transitions, bi) << kernel.name;
        EXPECT_GT(xform.reduction(), 0.2) << kernel.name;
    }
}

TEST(E9Headline, SchedulerReducesEnergyOnGeneratedApps) {
    const ReconfArch arch;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        AppGenParams params;
        params.seed = seed;
        const Application app = generate_application(params);
        const double naive = evaluate_schedule(app, arch, naive_schedule(app, arch)).total();
        const double greedy = evaluate_schedule(app, arch, greedy_schedule(app, arch)).total();
        EXPECT_LT(greedy, naive) << "seed " << seed;
    }
}

TEST(Reports, TablesRenderConfigurations) {
    EnergyBreakdown base;
    base.add("x", 2000.0);
    EnergyBreakdown opt;
    opt.add("x", 1000.0);
    const TablePrinter t = energy_comparison_table({{"baseline", base}, {"optimized", opt}});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("baseline"), std::string::npos);
    EXPECT_NE(s.find("-50.00"), std::string::npos);

    const TablePrinter bench = benchmark_energy_table(
        {"mono", "part"}, {{"fir", {2000.0, 1000.0}}});
    EXPECT_NE(bench.to_string().find("50.0"), std::string::npos);
}

TEST(Determinism, FullPipelineIsReproducible) {
    const Kernel& kernel = kernel_by_name("biquad");
    auto run_once = [&]() {
        const RunResult run = run_kernel(kernel);
        const MemoryOptimizationFlow flow(e1_params());
        return flow.compare(run.data_trace, ClusterMethod::Affinity).clustered.energy.total();
    };
    EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace memopt
