// Unit and property tests for the partitioning engine: architecture
// validation, energy evaluation, and DP-vs-brute-force certification.
#include <gtest/gtest.h>

#include <limits>

#include "partition/evaluate.hpp"
#include "partition/sleep.hpp"
#include "partition/solver.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "trace/synthetic.hpp"

namespace memopt {
namespace {

BlockProfile random_profile(std::size_t blocks, std::uint64_t seed, std::uint64_t max_count = 1000) {
    BlockProfile p(256, blocks);
    Rng rng(seed);
    for (std::size_t b = 0; b < blocks; ++b) {
        if (rng.next_bool(0.3)) continue;  // leave some blocks cold
        p.add_counts(b, rng.next_below(max_count), rng.next_below(max_count / 2 + 1));
    }
    if (p.total_accesses() == 0) p.add_counts(0, 10, 5);
    return p;
}

// ------------------------------------------------------- architecture ----

TEST(MemoryArchitecture, CapacityForRoundsUp) {
    EXPECT_EQ(MemoryArchitecture::capacity_for(256, 3, 256), 1024u);
    EXPECT_EQ(MemoryArchitecture::capacity_for(256, 4, 256), 1024u);
    EXPECT_EQ(MemoryArchitecture::capacity_for(256, 1, 1024), 1024u);  // min clamp
}

TEST(MemoryArchitecture, FromSplitsBuildsContiguousBanks) {
    const auto arch = MemoryArchitecture::from_splits(256, 10, {3, 7});
    ASSERT_EQ(arch.num_banks(), 3u);
    EXPECT_EQ(arch.banks()[0].num_blocks, 3u);
    EXPECT_EQ(arch.banks()[1].first_block, 3u);
    EXPECT_EQ(arch.banks()[2].end_block(), 10u);
    EXPECT_EQ(arch.num_blocks(), 10u);
}

TEST(MemoryArchitecture, BankOfBlockBinarySearch) {
    const auto arch = MemoryArchitecture::from_splits(256, 100, {10, 40, 90});
    EXPECT_EQ(arch.bank_of_block(0), 0u);
    EXPECT_EQ(arch.bank_of_block(9), 0u);
    EXPECT_EQ(arch.bank_of_block(10), 1u);
    EXPECT_EQ(arch.bank_of_block(39), 1u);
    EXPECT_EQ(arch.bank_of_block(89), 2u);
    EXPECT_EQ(arch.bank_of_block(99), 3u);
    EXPECT_THROW(arch.bank_of_block(100), Error);
}

TEST(MemoryArchitecture, RejectsBadLayouts) {
    EXPECT_THROW(MemoryArchitecture({}, 256), Error);
    // Gap between banks.
    std::vector<Bank> gap{{0, 2, 512}, {3, 2, 512}};
    EXPECT_THROW(MemoryArchitecture(gap, 256), Error);
    // Capacity too small for the range.
    std::vector<Bank> tiny{{0, 4, 512}};
    EXPECT_THROW(MemoryArchitecture(tiny, 256), Error);
    // Non-pow2 capacity.
    std::vector<Bank> odd{{0, 3, 768}};
    EXPECT_THROW(MemoryArchitecture(odd, 256), Error);
}

TEST(MemoryArchitecture, FromSplitsValidatesSplits) {
    EXPECT_THROW(MemoryArchitecture::from_splits(256, 10, {0}), Error);
    EXPECT_THROW(MemoryArchitecture::from_splits(256, 10, {10}), Error);
    EXPECT_THROW(MemoryArchitecture::from_splits(256, 10, {5, 5}), Error);
    EXPECT_THROW(MemoryArchitecture::from_splits(256, 10, {7, 3}), Error);
}

// ----------------------------------------------------------- evaluate ----

TEST(Evaluate, MonolithicMatchesSingleBankPartition) {
    const BlockProfile p = random_profile(16, 1);
    const PartitionEnergyParams params;
    const auto mono = evaluate_monolithic(p, params);
    const auto arch = MemoryArchitecture::monolithic(256, 16);
    const auto same = evaluate_partition(arch, p, params);
    EXPECT_DOUBLE_EQ(mono.total(), same.total());
    EXPECT_DOUBLE_EQ(mono.component("bank_select"), 0.0);
}

TEST(Evaluate, IsolatingHotBlockSavesEnergy) {
    // One hot block in a big cold space: a small dedicated bank must win.
    BlockProfile p(256, 64);
    p.add_counts(0, 100000, 50000);
    const PartitionEnergyParams params;
    const auto mono = evaluate_monolithic(p, params);
    const auto split = evaluate_partition(MemoryArchitecture::from_splits(256, 64, {1}), p, params);
    EXPECT_LT(split.total(), mono.total());
}

TEST(Evaluate, RemapOverheadCharged) {
    const BlockProfile p = random_profile(8, 2);
    PartitionEnergyParams params;
    params.extra_pj_per_access = 1.5;
    const auto e = evaluate_monolithic(p, params);
    EXPECT_DOUBLE_EQ(e.component("remap"),
                     1.5 * static_cast<double>(p.total_accesses()));
}

TEST(Evaluate, LeakageOnlyWhenRuntimeGiven) {
    const BlockProfile p = random_profile(8, 3);
    PartitionEnergyParams params;
    EXPECT_DOUBLE_EQ(evaluate_monolithic(p, params).component("leakage"), 0.0);
    params.runtime_cycles = 100000;
    EXPECT_GT(evaluate_monolithic(p, params).component("leakage"), 0.0);
}

TEST(Evaluate, RejectsGeometryMismatch) {
    const BlockProfile p = random_profile(8, 4);
    const auto arch = MemoryArchitecture::monolithic(256, 9);
    EXPECT_THROW(evaluate_partition(arch, p, {}), Error);
}

// ------------------------------------------------------------ solvers ----

class SolverCertification : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverCertification, DpMatchesBruteForce) {
    const BlockProfile p = random_profile(10, GetParam());
    PartitionConstraints constraints;
    constraints.max_banks = 4;
    const PartitionEnergyParams params;
    const auto dp = solve_partition_optimal(p, constraints, params);
    const auto brute = solve_partition_brute(p, constraints, params);
    EXPECT_NEAR(dp.energy.total(), brute.energy.total(), 1e-6 * brute.energy.total());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverCertification,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

class SolverOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverOrdering, OptimalLeqGreedyLeqMonolithic) {
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = 64 * 1024, .num_accesses = 30000, .write_fraction = 0.3,
                 .seed = GetParam()},
        .num_hotspots = 6,
        .hotspot_bytes = 1024,
        .hot_fraction = 0.85,
    });
    const BlockProfile p = BlockProfile::from_trace(trace, 256);
    PartitionConstraints constraints;
    constraints.max_banks = 8;
    const PartitionEnergyParams params;
    const double mono = evaluate_monolithic(p, params).total();
    const double greedy = solve_partition_greedy(p, constraints, params).energy.total();
    const double optimal = solve_partition_optimal(p, constraints, params).energy.total();
    EXPECT_LE(optimal, greedy * (1 + 1e-12));
    EXPECT_LE(greedy, mono * (1 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverOrdering, ::testing::Values(11, 12, 13, 14, 15));

TEST(Solver, RespectsBankBudget) {
    const BlockProfile p = random_profile(64, 77);
    for (std::size_t max_banks : {1u, 2u, 3u, 5u, 8u}) {
        PartitionConstraints constraints;
        constraints.max_banks = max_banks;
        const auto sol = solve_partition_optimal(p, constraints, {});
        EXPECT_LE(sol.arch.num_banks(), max_banks);
        EXPECT_EQ(sol.arch.num_blocks(), p.num_blocks());
    }
}

TEST(Solver, MoreBanksNeverHurt) {
    const BlockProfile p = random_profile(64, 78);
    double prev = std::numeric_limits<double>::infinity();
    for (std::size_t max_banks = 1; max_banks <= 8; ++max_banks) {
        const auto sol = solve_partition_optimal(p, {max_banks}, {});
        EXPECT_LE(sol.energy.total(), prev * (1 + 1e-12));
        prev = sol.energy.total();
    }
}

TEST(Solver, SingleBankBudgetYieldsMonolithic) {
    const BlockProfile p = random_profile(32, 79);
    const auto sol = solve_partition_optimal(p, {1}, {});
    EXPECT_EQ(sol.arch.num_banks(), 1u);
    EXPECT_DOUBLE_EQ(sol.energy.total(), evaluate_monolithic(p, {}).total());
}

TEST(Solver, UniformProfileGainsLittle) {
    // With perfectly uniform heat, partitioning can still shrink bank size,
    // but the DP result must match the evaluated architecture exactly.
    BlockProfile p(256, 32);
    for (std::size_t b = 0; b < 32; ++b) p.add_counts(b, 100, 50);
    const auto sol = solve_partition_optimal(p, {8}, {});
    const auto recheck = evaluate_partition(sol.arch, p, {});
    EXPECT_DOUBLE_EQ(sol.energy.total(), recheck.total());
}

TEST(Solver, BruteForceRejectsLargeInstances) {
    const BlockProfile p = random_profile(32, 80);
    EXPECT_THROW(solve_partition_brute(p, {4}, {}), Error);
}

TEST(Solver, GreedyHandlesLargeProfiles) {
    const BlockProfile p = random_profile(4096, 81);
    const auto sol = solve_partition_greedy(p, {8}, {});
    EXPECT_LE(sol.arch.num_banks(), 8u);
    EXPECT_EQ(sol.arch.num_blocks(), 4096u);
}


// -------------------------------------------------------- sleepy banks ----

MemTrace bursty_trace(std::uint64_t gap_cycles) {
    // Two 4-block regions accessed in alternating bursts separated by idle
    // gaps longer than any reasonable sleep threshold.
    MemTrace t;
    std::uint64_t cycle = 0;
    for (int burst = 0; burst < 10; ++burst) {
        const std::uint64_t base = burst % 2 == 0 ? 0 : 2048;
        for (int i = 0; i < 50; ++i) {
            t.add(MemAccess{.addr = base + static_cast<std::uint64_t>(i % 256) * 4,
                            .cycle = cycle, .size = 4, .kind = AccessKind::Read});
            cycle += 2;
        }
        cycle += gap_cycles;
    }
    return t;
}

TEST(SleepyBanks, IdleBanksSleepAndWake) {
    const MemTrace trace = bursty_trace(5000);
    const BlockProfile profile = BlockProfile::from_trace(trace, 1024);
    // Two banks: blocks [0,1) and [1, N).
    const auto arch = MemoryArchitecture::from_splits(1024, profile.num_blocks(), {1});
    const AddressMap map = AddressMap::identity(1024, profile.num_blocks());
    SleepParams sleep;
    sleep.idle_cycles = 500;
    const SleepReport report = evaluate_partition_sleepy(arch, map, trace, {}, sleep);
    // Each bank is touched by 5 bursts: it must wake repeatedly.
    EXPECT_GE(report.total_wakeups(), 8u);
    EXPECT_GT(report.energy.component("wakeup"), 0.0);
    EXPECT_GT(report.energy.component("leakage"), 0.0);
    // Every access is accounted to some bank.
    std::uint64_t accesses = 0;
    for (const SleepBankStats& b : report.banks) accesses += b.accesses;
    EXPECT_EQ(accesses, trace.size());
}

TEST(SleepyBanks, SleepCutsLeakageVersusAlwaysOn) {
    const MemTrace trace = bursty_trace(20000);
    const BlockProfile profile = BlockProfile::from_trace(trace, 1024);
    const auto arch = MemoryArchitecture::from_splits(1024, profile.num_blocks(), {1});
    const AddressMap map = AddressMap::identity(1024, profile.num_blocks());

    SleepParams sleepy;
    sleepy.idle_cycles = 300;
    SleepParams never;
    never.idle_cycles = UINT64_MAX / 2;  // effectively never sleeps
    const double leak_sleepy =
        evaluate_partition_sleepy(arch, map, trace, {}, sleepy).energy.component("leakage");
    const double leak_never =
        evaluate_partition_sleepy(arch, map, trace, {}, never).energy.component("leakage");
    EXPECT_LT(leak_sleepy, 0.5 * leak_never);
}

TEST(SleepyBanks, NeverSleepingMatchesNominalLeakage) {
    const MemTrace trace = bursty_trace(100);
    const BlockProfile profile = BlockProfile::from_trace(trace, 1024);
    const auto arch = MemoryArchitecture::monolithic(1024, profile.num_blocks());
    const AddressMap map = AddressMap::identity(1024, profile.num_blocks());
    SleepParams never;
    never.idle_cycles = UINT64_MAX / 2;
    const SleepReport report = evaluate_partition_sleepy(arch, map, trace, {}, never);
    // Nominal leakage over the run length, computed independently.
    const SramEnergyModel model(arch.banks()[0].size_bytes);
    const std::uint64_t run = trace.accesses().back().cycle + 1;
    EXPECT_NEAR(report.energy.component("leakage"),
                model.leakage_energy(run, never.cycle_ns), 1e-9);
    EXPECT_EQ(report.total_wakeups(), 0u);
}

TEST(SleepyBanks, RemapChargedPerAccess) {
    const MemTrace trace = bursty_trace(1000);
    const BlockProfile profile = BlockProfile::from_trace(trace, 1024);
    const auto arch = MemoryArchitecture::monolithic(1024, profile.num_blocks());
    const AddressMap map = AddressMap::identity(1024, profile.num_blocks());
    PartitionEnergyParams params;
    params.extra_pj_per_access = 2.0;
    const SleepReport report = evaluate_partition_sleepy(arch, map, trace, params, {});
    EXPECT_DOUBLE_EQ(report.energy.component("remap"), 2.0 * trace.size());
}

TEST(SleepyBanks, ValidatesInputs) {
    const MemTrace trace = bursty_trace(100);
    const BlockProfile profile = BlockProfile::from_trace(trace, 1024);
    const auto arch = MemoryArchitecture::monolithic(1024, profile.num_blocks());
    const AddressMap wrong = AddressMap::identity(1024, profile.num_blocks() + 1);
    EXPECT_THROW(evaluate_partition_sleepy(arch, wrong, trace, {}, {}), Error);
    const AddressMap ok = AddressMap::identity(1024, profile.num_blocks());
    EXPECT_THROW(evaluate_partition_sleepy(arch, ok, MemTrace{}, {}, {}), Error);
    SleepParams bad;
    bad.sleep_leak_factor = 2.0;
    EXPECT_THROW(evaluate_partition_sleepy(arch, ok, trace, {}, bad), Error);
}

}  // namespace
}  // namespace memopt
