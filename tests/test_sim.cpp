// Unit tests for the AR32 simulator: instruction semantics, flags and
// branches, memory access, tracing, and the runaway guard.
#include <gtest/gtest.h>

#include "sim/cpu.hpp"
#include "sim/memory.hpp"
#include "support/assert.hpp"

namespace memopt {
namespace {

std::vector<std::uint32_t> run_outputs(const std::string& source) {
    return run_source(source).output;
}

std::uint32_t run_single_output(const std::string& source) {
    const auto outputs = run_outputs(source);
    EXPECT_EQ(outputs.size(), 1u);
    return outputs.empty() ? 0u : outputs[0];
}

// -------------------------------------------------------------- memory ----

TEST(Memory, LittleEndianWordAccess) {
    Memory mem(4096);
    mem.store32(0, 0x11223344);
    EXPECT_EQ(mem.load8(0), 0x44u);
    EXPECT_EQ(mem.load8(3), 0x11u);
    EXPECT_EQ(mem.load16(0), 0x3344u);
    EXPECT_EQ(mem.load16(2), 0x1122u);
    EXPECT_EQ(mem.load32(0), 0x11223344u);
}

TEST(Memory, RejectsMisalignedAndOutOfRange) {
    Memory mem(4096);
    EXPECT_THROW(mem.load32(2), Error);
    EXPECT_THROW(mem.load16(1), Error);
    EXPECT_THROW(mem.load32(4096), Error);
    EXPECT_THROW(mem.store8(4096, 1), Error);
}

TEST(Memory, RejectsBadSize) {
    EXPECT_THROW(Memory(1000), Error);
    EXPECT_THROW(Memory(2048), Error);
}

// ---------------------------------------------------------- arithmetic ----

TEST(CpuExec, BasicArithmetic) {
    EXPECT_EQ(run_single_output("movi r1, 20\nmovi r2, 22\nadd r3, r1, r2\nout r3\nhalt\n"), 42u);
    EXPECT_EQ(run_single_output("movi r1, 20\nmovi r2, 22\nsub r3, r1, r2\nout r3\nhalt\n"),
              static_cast<std::uint32_t>(-2));
    EXPECT_EQ(run_single_output("movi r1, 6\nmovi r2, 7\nmul r3, r1, r2\nout r3\nhalt\n"), 42u);
}

TEST(CpuExec, ArithmeticWrapsModulo32) {
    EXPECT_EQ(run_single_output("li r1, 0xFFFFFFFF\naddi r2, r1, 1\nout r2\nhalt\n"), 0u);
    EXPECT_EQ(run_single_output("li r1, 0x80000000\nli r2, 0x80000000\nmul r3, r1, r2\n"
                                "out r3\nhalt\n"),
              0u);
}

TEST(CpuExec, LogicOps) {
    EXPECT_EQ(run_single_output("movi r1, 0xF0\nmovi r2, 0x3C\nand r3, r1, r2\nout r3\nhalt\n"),
              0x30u);
    EXPECT_EQ(run_single_output("movi r1, 0xF0\nmovi r2, 0x3C\norr r3, r1, r2\nout r3\nhalt\n"),
              0xFCu);
    EXPECT_EQ(run_single_output("movi r1, 0xF0\nmovi r2, 0x3C\neor r3, r1, r2\nout r3\nhalt\n"),
              0xCCu);
    EXPECT_EQ(run_single_output("movi r1, 5\nmvn r2, r1\nout r2\nhalt\n"), ~5u);
}

TEST(CpuExec, Shifts) {
    EXPECT_EQ(run_single_output("movi r1, 1\nlsli r2, r1, 31\nout r2\nhalt\n"), 0x80000000u);
    EXPECT_EQ(run_single_output("li r1, 0x80000000\nlsri r2, r1, 31\nout r2\nhalt\n"), 1u);
    EXPECT_EQ(run_single_output("li r1, 0x80000000\nasri r2, r1, 31\nout r2\nhalt\n"),
              0xFFFFFFFFu);
    // Register shifts use the low 5 bits of the amount.
    EXPECT_EQ(run_single_output("movi r1, 1\nmovi r2, 33\nlsl r3, r1, r2\nout r3\nhalt\n"), 2u);
}

TEST(CpuExec, MoviSignExtendsAndMovhiMerges) {
    EXPECT_EQ(run_single_output("movi r1, -1\nout r1\nhalt\n"), 0xFFFFFFFFu);
    EXPECT_EQ(run_single_output("movi r1, -1\nmovhi r1, 0x1234\nout r1\nhalt\n"), 0x1234FFFFu);
    EXPECT_EQ(run_single_output("li r1, 0xDEADBEEF\nout r1\nhalt\n"), 0xDEADBEEFu);
}

TEST(CpuExec, ImmediateVariantsMatchRegisterVariants) {
    EXPECT_EQ(run_single_output("movi r1, 100\nsubi r2, r1, 58\nout r2\nhalt\n"), 42u);
    EXPECT_EQ(run_single_output("movi r1, 0xFF\nandi r2, r1, 0x0F\nout r2\nhalt\n"), 0x0Fu);
    EXPECT_EQ(run_single_output("movi r1, 0xF0\norri r2, r1, 0x0F\nout r2\nhalt\n"), 0xFFu);
    EXPECT_EQ(run_single_output("movi r1, 0xFF\neori r2, r1, 0xF0\nout r2\nhalt\n"), 0x0Fu);
}

// ------------------------------------------------------ flags/branches ----

TEST(CpuExec, SignedBranches) {
    // -1 < 1 signed.
    EXPECT_EQ(run_single_output(R"(
        movi r1, -1
        movi r2, 1
        cmp  r1, r2
        blt  yes
        movi r3, 0
        b    done
yes:    movi r3, 1
done:   out  r3
        halt
)"),
              1u);
}

TEST(CpuExec, UnsignedBranches) {
    // 0xFFFFFFFF is large unsigned, so NOT below 1.
    EXPECT_EQ(run_single_output(R"(
        movi r1, -1
        movi r2, 1
        cmp  r1, r2
        blo  yes
        movi r3, 0
        b    done
yes:    movi r3, 1
done:   out  r3
        halt
)"),
              0u);
}

TEST(CpuExec, OverflowAwareSignedCompare) {
    // INT_MIN < 1 must hold despite overflow in the subtraction.
    EXPECT_EQ(run_single_output(R"(
        li   r1, 0x80000000
        movi r2, 1
        cmp  r1, r2
        blt  yes
        movi r3, 0
        b    done
yes:    movi r3, 1
done:   out  r3
        halt
)"),
              1u);
}

TEST(CpuExec, EqualityAndGtLe) {
    const char* tmpl = R"(
        movi r1, %d
        movi r2, %d
        cmp  r1, r2
        %s   yes
        movi r3, 0
        b    done
yes:    movi r3, 1
done:   out  r3
        halt
)";
    auto check = [&](int a, int b, const char* branch, std::uint32_t expect) {
        char buf[512];
        std::snprintf(buf, sizeof buf, tmpl, a, b, branch);
        EXPECT_EQ(run_single_output(buf), expect) << a << " " << branch << " " << b;
    };
    check(5, 5, "beq", 1);
    check(5, 6, "beq", 0);
    check(5, 6, "bne", 1);
    check(7, 6, "bgt", 1);
    check(6, 6, "bgt", 0);
    check(6, 6, "ble", 1);
    check(6, 6, "bge", 1);
    check(5, 6, "bhs", 0);
    check(6, 5, "bhs", 1);
}

TEST(CpuExec, CallAndReturn) {
    EXPECT_EQ(run_single_output(R"(
        movi r1, 1
        bl   fn
        addi r1, r1, 100
        out  r1
        halt
fn:     addi r1, r1, 10
        ret
)"),
              111u);
}

TEST(CpuExec, IndirectJump) {
    EXPECT_EQ(run_single_output(R"(
        li   r2, target
        jr   r2
        movi r1, 0
        out  r1
        halt
target: movi r1, 7
        out  r1
        halt
)"),
              7u);
}

// -------------------------------------------------------------- memory ----

TEST(CpuExec, LoadStoreWidths) {
    EXPECT_EQ(run_single_output(R"(
        li   r1, buf
        li   r2, 0xAABBCCDD
        stw  r2, [r1]
        ldb  r3, [r1, 1]
        out  r3
        halt
.data
buf:    .space 16
)"),
              0xCCu);
    EXPECT_EQ(run_single_output(R"(
        li   r1, buf
        li   r2, 0xAABBCCDD
        stw  r2, [r1]
        ldh  r3, [r1, 2]
        out  r3
        halt
.data
buf:    .space 16
)"),
              0xAABBu);
}

TEST(CpuExec, ByteStoreTruncates) {
    EXPECT_EQ(run_single_output(R"(
        li   r1, buf
        li   r2, 0x1FF
        stb  r2, [r1]
        ldw  r3, [r1]
        out  r3
        halt
.data
buf:    .word 0
)"),
              0xFFu);
}

TEST(CpuExec, IndexedAddressing) {
    EXPECT_EQ(run_single_output(R"(
        li   r1, arr
        movi r2, 8
        ldwx r3, [r1, r2]
        out  r3
        halt
.data
arr:    .word 10, 20, 30
)"),
              30u);
}

TEST(CpuExec, DataImageLoadedAtBase) {
    EXPECT_EQ(run_single_output(R"(
        li   r1, v
        ldw  r2, [r1]
        out  r2
        halt
.data
v:      .word 0xCAFE
)"),
              0xCAFEu);
}

TEST(CpuExec, StackPushPop) {
    EXPECT_EQ(run_single_output(R"(
        movi r1, 11
        movi r2, 22
        push r1
        push r2
        pop  r3
        pop  r4
        mul  r5, r3, r4
        out  r5
        halt
)"),
              242u);
}

TEST(CpuExec, MisalignedAccessFaults) {
    EXPECT_THROW(run_source("movi r1, 2\nldw r2, [r1]\nhalt\n"), Error);
}

TEST(CpuExec, OutOfRangeAccessFaults) {
    CpuConfig cfg;
    cfg.mem_size = 64 * 1024;
    EXPECT_THROW(run_source("li r1, 0x100000\nldw r2, [r1]\nhalt\n", cfg), Error);
}

// ------------------------------------------------------------- tracing ----

TEST(CpuExec, DataTraceRecordsValuesAndKinds) {
    const RunResult r = run_source(R"(
        li   r1, buf
        movi r2, 77
        stw  r2, [r1]
        ldw  r3, [r1]
        halt
.data
buf:    .word 0
)");
    ASSERT_EQ(r.data_trace.size(), 2u);
    const auto accesses = r.data_trace.accesses();
    EXPECT_EQ(accesses[0].kind, AccessKind::Write);
    EXPECT_EQ(accesses[0].value, 77u);
    EXPECT_EQ(accesses[1].kind, AccessKind::Read);
    EXPECT_EQ(accesses[1].value, 77u);
    EXPECT_EQ(accesses[0].addr, accesses[1].addr);
}

TEST(CpuExec, FetchStreamMatchesExecutedWords) {
    CpuConfig cfg;
    cfg.record_fetch_stream = true;
    const RunResult r = run_source("movi r1, 0\nmovi r1, 1\nhalt\n", cfg);
    EXPECT_EQ(r.fetch_stream.size(), r.instructions);
    EXPECT_EQ(r.instructions, 3u);
}

TEST(CpuExec, TraceDisabledWhenConfigured) {
    CpuConfig cfg;
    cfg.record_data_trace = false;
    const RunResult r = run_source(R"(
        li  r1, buf
        ldw r2, [r1]
        halt
.data
buf:    .word 1
)", cfg);
    EXPECT_TRUE(r.data_trace.empty());
}

// ----------------------------------------------------------- liveness ----

TEST(CpuExec, RunawayGuardFires) {
    CpuConfig cfg;
    cfg.max_instructions = 1000;
    EXPECT_THROW(run_source("loop: b loop\nhalt\n", cfg), Error);
}

TEST(CpuExec, PcOutOfRangeFaults) {
    // Fall off the end of the code (no halt).
    EXPECT_THROW(run_source("nop\n"), Error);
}

TEST(CpuExec, CycleModelChargesExtras) {
    const RunResult plain = run_source("nop\nnop\nhalt\n");
    EXPECT_EQ(plain.cycles, 3u);
    const RunResult mul = run_source("mul r1, r2, r3\nhalt\n");
    EXPECT_EQ(mul.cycles, 2u + 2u);  // mul(+2) + halt
}

}  // namespace
}  // namespace memopt
