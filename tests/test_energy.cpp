// Unit tests for the energy models (SRAM, DRAM, bus) and EnergyBreakdown.
#include <gtest/gtest.h>

#include <sstream>

#include "energy/bus_model.hpp"
#include "energy/dram_model.hpp"
#include "energy/report.hpp"
#include "energy/sram_model.hpp"
#include "support/assert.hpp"

namespace memopt {
namespace {

// ----------------------------------------------------------------- SRAM ----

TEST(SramModel, EnergyGrowsWithCapacity) {
    double prev = 0.0;
    for (std::uint64_t size = 256; size <= 1 << 20; size *= 2) {
        const SramEnergyModel model(size);
        EXPECT_GT(model.read_energy(), prev);
        prev = model.read_energy();
    }
}

TEST(SramModel, GrowthIsSuperLogarithmic) {
    // Quadrupling the capacity should roughly double the array term
    // (sqrt scaling), i.e. clearly more than an additive decoder bump.
    const SramEnergyModel small(1024);
    const SramEnergyModel big(16 * 1024);
    EXPECT_GT(big.read_energy(), 2.0 * small.read_energy());
}

TEST(SramModel, WriteCostsMoreThanRead) {
    const SramEnergyModel model(4096);
    EXPECT_GT(model.write_energy(), model.read_energy());
    EXPECT_NEAR(model.write_energy() / model.read_energy(),
                model.technology().write_factor, 1e-12);
}

TEST(SramModel, WiderWordsCostMore) {
    const SramEnergyModel narrow(4096, 16);
    const SramEnergyModel wide(4096, 64);
    EXPECT_GT(wide.read_energy(), narrow.read_energy());
}

TEST(SramModel, LeakageScalesWithSizeAndTime) {
    const SramEnergyModel model(8192);
    EXPECT_DOUBLE_EQ(model.leakage_pw(), 1.5 * 8192);
    const double e1 = model.leakage_energy(1000, 10.0);
    const double e2 = model.leakage_energy(2000, 10.0);
    EXPECT_NEAR(e2, 2.0 * e1, 1e-12);
    EXPECT_DOUBLE_EQ(model.leakage_energy(0, 10.0), 0.0);
}

TEST(SramModel, RejectsBadGeometry) {
    EXPECT_THROW(SramEnergyModel(1000), Error);      // not pow2
    EXPECT_THROW(SramEnergyModel(8), Error);         // too small
    EXPECT_THROW(SramEnergyModel(1024, 24), Error);  // odd width
}

TEST(SramModel, CalibrationAnchors) {
    // Documented anchors of the default technology: ~12 pJ at 1 KiB,
    // ~79 pJ at 64 KiB (0.18um-class embedded SRAM).
    EXPECT_NEAR(SramEnergyModel(1024).read_energy(), 12.0, 2.0);
    EXPECT_NEAR(SramEnergyModel(64 * 1024).read_energy(), 79.0, 8.0);
}

TEST(BankSelect, ZeroForMonolithicAndMonotone) {
    EXPECT_DOUBLE_EQ(bank_select_energy(1), 0.0);
    double prev = 0.0;
    for (std::size_t banks = 2; banks <= 64; banks *= 2) {
        const double e = bank_select_energy(banks);
        EXPECT_GT(e, prev);
        prev = e;
    }
}

// ----------------------------------------------------------------- DRAM ----

TEST(DramModel, BurstEnergyAffineInBytes) {
    const DramEnergyModel model;
    EXPECT_DOUBLE_EQ(model.burst_energy(0), 0.0);
    const double e16 = model.burst_energy(16);
    const double e32 = model.burst_energy(32);
    EXPECT_GT(e16, model.technology().activate_pj);
    EXPECT_NEAR(e32 - e16, 16 * model.technology().per_byte_pj, 1e-9);
}

TEST(DramModel, SmallerBurstsCostLess) {
    const DramEnergyModel model;
    EXPECT_LT(model.burst_energy(8), model.burst_energy(32));
}

// ------------------------------------------------------------------ bus ----

TEST(Bus, Hamming32) {
    EXPECT_EQ(hamming32(0, 0), 0u);
    EXPECT_EQ(hamming32(0xFFFFFFFF, 0), 32u);
    EXPECT_EQ(hamming32(0b1010, 0b0101), 4u);
}

TEST(Bus, CountTransitionsOverStream) {
    const std::vector<std::uint32_t> words{0x1, 0x3, 0x3, 0x0};
    // 0->1: 1, 1->3: 1, 3->3: 0, 3->0: 2
    EXPECT_EQ(count_transitions(words, 0), 4u);
}

TEST(Bus, StreamEnergyMatchesTransitionCount) {
    const std::vector<std::uint32_t> words{0xFF, 0x00, 0xFF};
    const BusEnergyModel model;
    EXPECT_DOUBLE_EQ(model.stream_energy(words, 0),
                     model.transition_energy(count_transitions(words, 0)));
}

// ------------------------------------------------------------ breakdown ----

TEST(EnergyBreakdown, AddAccumulatesByName) {
    EnergyBreakdown b;
    b.add("x", 10.0);
    b.add("y", 5.0);
    b.add("x", 2.5);
    EXPECT_DOUBLE_EQ(b.component("x"), 12.5);
    EXPECT_DOUBLE_EQ(b.component("y"), 5.0);
    EXPECT_DOUBLE_EQ(b.component("absent"), 0.0);
    EXPECT_DOUBLE_EQ(b.total(), 17.5);
}

TEST(EnergyBreakdown, MergeAndScale) {
    EnergyBreakdown a;
    a.add("x", 1.0);
    EnergyBreakdown b;
    b.add("x", 2.0);
    b.add("y", 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.component("x"), 3.0);
    a.scale(2.0);
    EXPECT_DOUBLE_EQ(a.total(), 12.0);
}

TEST(EnergyBreakdown, PreservesInsertionOrderInPrint) {
    EnergyBreakdown b;
    b.add("zeta", 1.0);
    b.add("alpha", 1.0);
    std::ostringstream oss;
    b.print(oss, "title");
    const std::string s = oss.str();
    EXPECT_LT(s.find("zeta"), s.find("alpha"));
    EXPECT_NE(s.find("total"), std::string::npos);
}

}  // namespace
}  // namespace memopt
