// Durable-execution layer tests: seeded I/O fault injection, deterministic
// retry/backoff, crash-safe atomic writes, the memopt.ckpt.v1 container
// (including a corruption fuzz suite mirroring StreamFuzzTest), campaign
// and study checkpoint/resume bit-identity, and the cooperative watchdog.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "fault/campaign.hpp"
#include "sim/kernels.hpp"
#include "support/assert.hpp"
#include "support/durable/atomic_file.hpp"
#include "support/durable/cancel.hpp"
#include "support/durable/checkpoint.hpp"
#include "support/durable/io_faults.hpp"
#include "support/durable/retry.hpp"
#include "support/rng.hpp"
#include "trace/io.hpp"
#include "trace/stream_file.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace.hpp"

namespace memopt {
namespace {

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "durable_" + name;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

bool file_exists(const std::string& path) {
    std::ifstream in(path);
    return in.good();
}

/// Every test leaves the process-wide injector disabled and the global
/// cancellation token disarmed, whatever it exercised.
class DurableTest : public ::testing::Test {
protected:
    void SetUp() override {
        set_io_faults(IoFaultSpec{});
        CancellationToken::global().reset();
    }
    void TearDown() override {
        set_io_faults(IoFaultSpec{});
        CancellationToken::global().reset();
    }
};

// ---------------------------------------------------------------------------
// I/O fault injection

TEST_F(DurableTest, FaultSpecParsesSeedRateAndMax) {
    const IoFaultSpec spec = parse_io_fault_spec("7,0.25");
    EXPECT_TRUE(spec.enabled);
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_DOUBLE_EQ(spec.rate, 0.25);
    EXPECT_EQ(spec.max_failures, 2u);

    const IoFaultSpec custom = parse_io_fault_spec("11,1.0,max=1");
    EXPECT_EQ(custom.seed, 11u);
    EXPECT_DOUBLE_EQ(custom.rate, 1.0);
    EXPECT_EQ(custom.max_failures, 1u);
}

TEST_F(DurableTest, FaultSpecRejectsMalformedInput) {
    EXPECT_THROW(parse_io_fault_spec("x"), Error);
    EXPECT_THROW(parse_io_fault_spec("7"), Error);
    EXPECT_THROW(parse_io_fault_spec("7,2.0"), Error);
    EXPECT_THROW(parse_io_fault_spec("7,-0.1"), Error);
    EXPECT_THROW(parse_io_fault_spec("7,0.5,max=999"), Error);
    EXPECT_THROW(parse_io_fault_spec("7,0.5,banana=1"), Error);
}

TEST_F(DurableTest, FaultDecisionsArePureAndBoundedByMaxFailures) {
    IoFaultSpec spec;
    spec.enabled = true;
    spec.seed = 42;
    spec.rate = 1.0;  // every eligible attempt fails
    const IoFaultInjector inj(spec);
    for (std::uint64_t unit = 0; unit < 16; ++unit) {
        EXPECT_TRUE(inj.should_fail("site.a", unit, 0));
        EXPECT_TRUE(inj.should_fail("site.a", unit, 1));
        // The bound that makes retry loops converge: attempts >=
        // max_failures never fail, whatever the rate.
        EXPECT_FALSE(inj.should_fail("site.a", unit, 2));
        EXPECT_FALSE(inj.should_fail("site.a", unit, 3));
    }
    // Same key, same answer — replays reproduce the same faults.
    EXPECT_EQ(inj.should_fail("site.b", 9, 0), inj.should_fail("site.b", 9, 0));
}

TEST_F(DurableTest, FaultRateShapesTheDecisionStream) {
    IoFaultSpec spec;
    spec.enabled = true;
    spec.seed = 3;
    spec.rate = 0.5;
    const IoFaultInjector inj(spec);
    int failures = 0;
    for (std::uint64_t unit = 0; unit < 1000; ++unit) {
        failures += inj.should_fail("mtsc.block", unit, 0) ? 1 : 0;
    }
    EXPECT_GT(failures, 350);  // loose: Binomial(1000, 0.5)
    EXPECT_LT(failures, 650);

    spec.rate = 0.0;
    const IoFaultInjector off(spec);
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.should_fail("mtsc.block", 0, 0));
}

TEST_F(DurableTest, MaybeFailThrowsTransientIoError) {
    IoFaultSpec spec;
    spec.enabled = true;
    spec.seed = 1;
    spec.rate = 1.0;
    const IoFaultInjector inj(spec);
    EXPECT_THROW(inj.maybe_fail("s", 0, 0), TransientIoError);
    EXPECT_NO_THROW(inj.maybe_fail("s", 0, 2));  // >= max_failures
}

// ---------------------------------------------------------------------------
// Retry policy

TEST_F(DurableTest, BackoffScheduleIsDeterministicAndCapped) {
    RetryPolicy policy;
    policy.enable_sleep = false;
    const std::uint64_t d0 = policy.delay_us("s", 7, 0);
    const std::uint64_t d1 = policy.delay_us("s", 7, 1);
    EXPECT_EQ(d0, policy.delay_us("s", 7, 0));  // pure function
    EXPECT_GE(d0, policy.base_delay_us);
    EXPECT_LE(d0, policy.base_delay_us + policy.base_delay_us / 2);  // +50% jitter cap
    EXPECT_GT(d1, d0);  // exponential growth
    // Far past the ceiling: nominal delay saturates at max_delay_us.
    EXPECT_LE(policy.delay_us("s", 7, 30), policy.max_delay_us + policy.max_delay_us / 2);
}

TEST_F(DurableTest, RunRetriesTransientErrorsOnly) {
    RetryPolicy policy;
    policy.enable_sleep = false;
    int calls = 0;
    const int result = policy.run("s", 0, [&](std::uint32_t attempt) {
        ++calls;
        if (attempt < 2) throw TransientIoError("flaky");
        return 99;
    });
    EXPECT_EQ(result, 99);
    EXPECT_EQ(calls, 3);

    // Structural corruption is never retried: one call, straight through.
    calls = 0;
    EXPECT_THROW(policy.run("s", 0, [&](std::uint32_t) -> int {
        ++calls;
        throw Error("bad magic");
    }),
                 Error);
    EXPECT_EQ(calls, 1);
}

TEST_F(DurableTest, RunGivesUpAfterMaxAttempts) {
    RetryPolicy policy;
    policy.enable_sleep = false;
    policy.max_attempts = 3;
    int calls = 0;
    EXPECT_THROW(policy.run("s", 0, [&](std::uint32_t) -> int {
        ++calls;
        throw TransientIoError("always");
    }),
                 TransientIoError);
    EXPECT_EQ(calls, 3);
}

TEST_F(DurableTest, RetryPolicyParsesAndRejects) {
    const RetryPolicy p = parse_retry_policy("6,100,9999");
    EXPECT_EQ(p.max_attempts, 6u);
    EXPECT_EQ(p.base_delay_us, 100u);
    EXPECT_EQ(p.max_delay_us, 9999u);
    EXPECT_THROW(parse_retry_policy(""), Error);
    EXPECT_THROW(parse_retry_policy("0,100"), Error);
    EXPECT_THROW(parse_retry_policy("nope"), Error);
}

TEST_F(DurableTest, InjectorAndPolicyConvergeTogether) {
    // The pairing contract: policy.max_attempts (4) > injector max_failures
    // (2), so a site that faults on every eligible attempt still converges.
    IoFaultSpec spec;
    spec.enabled = true;
    spec.seed = 5;
    spec.rate = 1.0;
    const IoFaultInjector inj(spec);
    RetryPolicy policy;
    policy.enable_sleep = false;
    const int ok = policy.run("converge", 123, [&](std::uint32_t attempt) {
        inj.maybe_fail("converge", 123, attempt);
        return 1;
    });
    EXPECT_EQ(ok, 1);
}

// ---------------------------------------------------------------------------
// atomic_write / AtomicOstream

TEST_F(DurableTest, AtomicWritePublishesContentsAndCleansUp) {
    const std::string path = temp_path("aw_basic.txt");
    atomic_write(path, std::string("hello durable\n"));
    EXPECT_EQ(slurp(path), "hello durable\n");
    EXPECT_FALSE(file_exists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST_F(DurableTest, AtomicWriteFailureLeavesPreviousArtifactIntact) {
    const std::string path = temp_path("aw_keep.txt");
    atomic_write(path, std::string("version 1\n"));
    EXPECT_THROW(atomic_write(path,
                              [](std::ostream&) -> void {
                                  throw Error("producer exploded mid-write");
                              }),
                 Error);
    EXPECT_EQ(slurp(path), "version 1\n");  // old bytes, not a truncation
    EXPECT_FALSE(file_exists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST_F(DurableTest, AtomicWriteRetriesUnderFaultInjection) {
    IoFaultSpec spec;
    spec.enabled = true;
    spec.seed = 9;
    spec.rate = 1.0;  // attempts 0 and 1 fail at every site
    set_io_faults(spec);
    const std::string path = temp_path("aw_faulted.txt");
    atomic_write(path, std::string("survived\n"));
    EXPECT_EQ(slurp(path), "survived\n");
    std::remove(path.c_str());
}

TEST_F(DurableTest, AtomicOstreamCommitAndDiscard) {
    const std::string path = temp_path("aos.txt");
    AtomicOstream os;
    ASSERT_TRUE(os.open_staged(path));
    os << "rows\n";
    EXPECT_FALSE(file_exists(path));  // nothing published before commit
    EXPECT_TRUE(os.commit());
    EXPECT_TRUE(os.commit());  // idempotent
    EXPECT_EQ(slurp(path), "rows\n");
    EXPECT_FALSE(file_exists(path + ".tmp"));

    AtomicOstream drop;
    ASSERT_TRUE(drop.open_staged(path));
    drop << "corrupted half-update";
    drop.discard();
    EXPECT_EQ(slurp(path), "rows\n");  // untouched
    std::remove(path.c_str());
}

TEST_F(DurableTest, AtomicOstreamDestructorAutoCommits) {
    const std::string path = temp_path("aos_dtor.txt");
    {
        AtomicOstream os;
        ASSERT_TRUE(os.open_staged(path));
        os << "published on scope exit\n";
    }
    EXPECT_EQ(slurp(path), "published on scope exit\n");
    std::remove(path.c_str());
}

TEST_F(DurableTest, AtomicOstreamMoveTransfersPublishDuty) {
    const std::string path = temp_path("aos_move.txt");
    {
        AtomicOstream a;
        ASSERT_TRUE(a.open_staged(path));
        a << "moved\n";
        AtomicOstream b(std::move(a));
        // The moved-from shell owns nothing: destroying it must not publish
        // or disturb b's staged bytes.
    }
    EXPECT_EQ(slurp(path), "moved\n");
    std::remove(path.c_str());
}

TEST_F(DurableTest, AtomicOstreamOpenFailureIsReported) {
    AtomicOstream os;
    EXPECT_FALSE(os.open_staged("/no/such/dir/x.json"));
}

// ---------------------------------------------------------------------------
// memopt.ckpt.v1 container

Checkpoint sample_checkpoint() {
    Checkpoint ckpt;
    ckpt.engine = kCkptEngineFault;
    ckpt.config_hash = 0xfeedfacecafebeefULL;
    ckpt.records = {std::string("alpha"), std::string(),  // empty record is legal
                    std::string("\x00\x01\xff\x7f", 4)};
    return ckpt;
}

TEST_F(DurableTest, CheckpointRoundTripsThroughDisk) {
    const std::string path = temp_path("ckpt_rt.bin");
    const Checkpoint ckpt = sample_checkpoint();
    save_checkpoint(path, ckpt);
    const Checkpoint back = load_checkpoint(path);
    EXPECT_EQ(back.engine, ckpt.engine);
    EXPECT_EQ(back.config_hash, ckpt.config_hash);
    EXPECT_EQ(back.records, ckpt.records);
    // Deterministic encoding: equal inputs, equal bytes.
    EXPECT_EQ(encode_checkpoint(ckpt), encode_checkpoint(ckpt));
    std::remove(path.c_str());
}

TEST_F(DurableTest, ResumeMissingFileIsASilentFreshStart) {
    EXPECT_EQ(load_checkpoint_for_resume(temp_path("ckpt_nope.bin"), kCkptEngineFault, 1),
              std::nullopt);
}

TEST_F(DurableTest, ResumeRefusesEngineAndConfigMismatch) {
    const std::string path = temp_path("ckpt_mismatch.bin");
    save_checkpoint(path, sample_checkpoint());
    EXPECT_EQ(load_checkpoint_for_resume(path, kCkptEngineStudy, 0xfeedfacecafebeefULL),
              std::nullopt);
    EXPECT_EQ(load_checkpoint_for_resume(path, kCkptEngineFault, 0xdeadbeefULL),
              std::nullopt);
    EXPECT_TRUE(load_checkpoint_for_resume(path, kCkptEngineFault, 0xfeedfacecafebeefULL)
                    .has_value());
    std::remove(path.c_str());
}

// Mirrors StreamFuzzTest: every truncation and every single-bit flip of a
// valid container must surface as a clean memopt::Error (and a warned
// nullopt from the resume entry point), never UB, a crash, or a silently
// accepted mutant.
TEST_F(DurableTest, CheckpointFuzzEveryTruncationIsRejected) {
    const std::string encoded = encode_checkpoint(sample_checkpoint());
    const std::string path = temp_path("ckpt_trunc.bin");
    for (std::size_t len = 0; len < encoded.size(); ++len) {
        atomic_write(path, encoded.substr(0, len), std::ios::binary);
        EXPECT_THROW(load_checkpoint(path), Error) << "truncated to " << len;
        EXPECT_EQ(load_checkpoint_for_resume(path, kCkptEngineFault,
                                             0xfeedfacecafebeefULL),
                  std::nullopt)
            << "truncated to " << len;
    }
    std::remove(path.c_str());
}

TEST_F(DurableTest, CheckpointFuzzEveryBitFlipIsRejected) {
    const std::string encoded = encode_checkpoint(sample_checkpoint());
    const std::string path = temp_path("ckpt_flip.bin");
    for (std::size_t byte = 0; byte < encoded.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutant = encoded;
            mutant[byte] = static_cast<char>(mutant[byte] ^ (1 << bit));
            atomic_write(path, mutant, std::ios::binary);
            // Every byte is covered by the trailing checksum (and the
            // checksum bytes themselves must then mismatch), so any
            // single-bit corruption is detectable.
            EXPECT_THROW(load_checkpoint(path), Error)
                << "byte " << byte << " bit " << bit;
        }
    }
    std::remove(path.c_str());
}

TEST_F(DurableTest, CheckpointFuzzRandomMutationsNeverCrash) {
    const std::string encoded = encode_checkpoint(sample_checkpoint());
    const std::string path = temp_path("ckpt_mut.bin");
    Rng rng(2026);
    for (int round = 0; round < 200; ++round) {
        std::string mutant = encoded;
        const int edits = 1 + static_cast<int>(rng.next_u64() % 8);
        for (int e = 0; e < edits; ++e) {
            const std::size_t at = rng.next_u64() % mutant.size();
            mutant[at] = static_cast<char>(rng.next_u64());
        }
        atomic_write(path, mutant, std::ios::binary);
        try {
            const Checkpoint back = load_checkpoint(path);
            // Astronomically unlikely (checksum collision), but if a mutant
            // parses it must at least be structurally coherent.
            EXPECT_LE(back.records.size(), 1u << 20);
        } catch (const Error&) {
            // expected for essentially every mutant
        }
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Campaign checkpoint/resume

FaultCampaignConfig small_campaign_config() {
    FaultCampaignConfig config;
    config.seed = 77;
    config.trials = 24;
    config.bit_flip_rate = 2e-3;
    config.protection = ProtectionScheme::Secded;
    config.codec_tag = "none";
    config.line_bytes = 32;
    return config;
}

std::vector<std::vector<std::uint8_t>> small_corpus() {
    std::vector<std::uint8_t> image(512);
    for (std::size_t i = 0; i < image.size(); ++i) {
        image[i] = static_cast<std::uint8_t>(i * 37 + 11);
    }
    return line_corpus(image, 32);
}

void expect_results_equal(const FaultCampaignResult& a, const FaultCampaignResult& b) {
    EXPECT_EQ(a.lines_evaluated, b.lines_evaluated);
    EXPECT_EQ(a.faults_injected, b.faults_injected);
    EXPECT_EQ(a.corrected, b.corrected);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.codec_rejects, b.codec_rejects);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.silent, b.silent);
    EXPECT_EQ(a.clean, b.clean);
    EXPECT_EQ(a.energy.total(), b.energy.total());  // bit-exact, not approx
}

TEST_F(DurableTest, TrialRecordRoundTripsAndRejectsWrongSize) {
    FaultTrialStats stats;
    stats.injected = 5;
    stats.corrected = 4;
    stats.detected = 3;
    stats.codec_rejects = 2;
    stats.degraded = 1;
    stats.silent = 7;
    stats.clean = 11;
    const std::string record = encode_trial_record(stats);
    EXPECT_EQ(record.size(), 56u);
    const FaultTrialStats back = decode_trial_record(record);
    EXPECT_EQ(back.injected, stats.injected);
    EXPECT_EQ(back.corrected, stats.corrected);
    EXPECT_EQ(back.detected, stats.detected);
    EXPECT_EQ(back.codec_rejects, stats.codec_rejects);
    EXPECT_EQ(back.degraded, stats.degraded);
    EXPECT_EQ(back.silent, stats.silent);
    EXPECT_EQ(back.clean, stats.clean);
    EXPECT_THROW(decode_trial_record(record.substr(0, 55)), Error);
    EXPECT_THROW(decode_trial_record(record + "x"), Error);
}

TEST_F(DurableTest, CampaignConfigHashPinsResultShapingInputs) {
    const auto corpus = small_corpus();
    FaultCampaignConfig a = small_campaign_config();
    const std::uint64_t base = campaign_config_hash(a, corpus, {});
    EXPECT_EQ(base, campaign_config_hash(a, corpus, {}));  // stable

    FaultCampaignConfig b = a;
    b.seed = 78;
    EXPECT_NE(campaign_config_hash(b, corpus, {}), base);
    FaultCampaignConfig c = a;
    c.codec_tag = "diff";
    EXPECT_NE(campaign_config_hash(c, corpus, {}), base);
    auto corpus2 = corpus;
    corpus2[0][0] ^= 1;
    EXPECT_NE(campaign_config_hash(a, corpus2, {}), base);
    const std::vector<double> probs(corpus.size(), 1e-3);
    EXPECT_NE(campaign_config_hash(a, corpus, probs), base);
}

TEST_F(DurableTest, CampaignResumesBitIdenticallyAtAnyJobs) {
    const auto corpus = small_corpus();
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        FaultCampaignConfig config = small_campaign_config();
        config.jobs = jobs;
        const FaultCampaignResult reference = run_campaign(config, corpus);

        const std::string path =
            temp_path("campaign_j" + std::to_string(jobs) + ".ckpt");
        std::remove(path.c_str());

        CampaignCheckpointOptions first;
        first.path = path;
        first.every = 4;
        first.max_trials_this_run = 10;  // deterministic "interruption"
        const CampaignCheckpointOutcome partial =
            run_campaign_checkpointed(config, corpus, {}, first);
        EXPECT_FALSE(partial.completed);
        EXPECT_EQ(partial.trials_done, 10u);
        EXPECT_EQ(partial.trials_total, config.trials);
        EXPECT_FALSE(partial.stop_reason.empty());

        CampaignCheckpointOptions second;
        second.path = path;
        second.resume = true;
        second.every = 4;
        const CampaignCheckpointOutcome resumed =
            run_campaign_checkpointed(config, corpus, {}, second);
        ASSERT_TRUE(resumed.completed);
        EXPECT_EQ(resumed.trials_done, config.trials);
        expect_results_equal(resumed.result, reference);
        std::remove(path.c_str());
    }
}

TEST_F(DurableTest, CampaignResumeIgnoresIncompatibleCheckpoint) {
    const auto corpus = small_corpus();
    FaultCampaignConfig config = small_campaign_config();
    const FaultCampaignResult reference = run_campaign(config, corpus);

    const std::string path = temp_path("campaign_stale.ckpt");
    FaultCampaignConfig other = config;
    other.seed = 12345;
    CampaignCheckpointOptions stale;
    stale.path = path;
    stale.max_trials_this_run = 6;
    (void)run_campaign_checkpointed(other, corpus, {}, stale);

    // Resume under the real config: the stale checkpoint's hash mismatches,
    // so the run restarts from zero and still converges on the reference.
    CampaignCheckpointOptions resume;
    resume.path = path;
    resume.resume = true;
    const CampaignCheckpointOutcome outcome =
        run_campaign_checkpointed(config, corpus, {}, resume);
    ASSERT_TRUE(outcome.completed);
    expect_results_equal(outcome.result, reference);
    std::remove(path.c_str());
}

TEST_F(DurableTest, CampaignWithoutCheckpointPathStillCompletes) {
    const auto corpus = small_corpus();
    const FaultCampaignConfig config = small_campaign_config();
    const CampaignCheckpointOutcome outcome =
        run_campaign_checkpointed(config, corpus, {}, CampaignCheckpointOptions{});
    ASSERT_TRUE(outcome.completed);
    expect_results_equal(outcome.result, run_campaign(config, corpus));
}

// ---------------------------------------------------------------------------
// Study checkpoint/resume

TEST_F(DurableTest, StudyRecordRoundTripsAndRejectsMalformed) {
    StudyOutcome outcome;
    outcome.name = "fir";
    outcome.json = "{\n  \"x\": 1\n}";
    outcome.clustering_savings_pct = 12.5;
    outcome.compression_savings_pct = -3.25;
    outcome.encoding_reduction_pct = 40.0;
    const std::string record = encode_study_record(outcome);
    const StudyOutcome back = decode_study_record(record);
    EXPECT_EQ(back.name, outcome.name);
    EXPECT_EQ(back.json, outcome.json);
    EXPECT_EQ(back.clustering_savings_pct, outcome.clustering_savings_pct);
    EXPECT_EQ(back.compression_savings_pct, outcome.compression_savings_pct);
    EXPECT_EQ(back.encoding_reduction_pct, outcome.encoding_reduction_pct);
    EXPECT_THROW(decode_study_record(record.substr(0, record.size() - 1)), Error);
    EXPECT_THROW(decode_study_record(record + "y"), Error);
    EXPECT_THROW(decode_study_record(""), Error);
}

TEST_F(DurableTest, StudySuiteResumesByteIdentically) {
    const std::vector<Kernel> suite = kernel_suite();
    ASSERT_GE(suite.size(), 2u);
    const std::vector<Kernel> kernels(suite.begin(), suite.begin() + 2);
    StudyParams params;
    params.flow.constraints.max_banks = 4;

    const std::vector<StudyReport> reference = study_suite(kernels, params);

    const std::string path = temp_path("study.ckpt");
    std::remove(path.c_str());
    StudyCheckpointOptions first;
    first.path = path;
    first.config_tag = "banks=4";
    first.max_kernels_this_run = 1;
    const StudySuiteOutcome partial = study_suite_checkpointed(kernels, params, 0, first);
    EXPECT_FALSE(partial.completed);
    EXPECT_EQ(partial.outcomes.size(), 1u);
    EXPECT_FALSE(partial.stop_reason.empty());

    StudyCheckpointOptions second;
    second.path = path;
    second.resume = true;
    second.config_tag = "banks=4";
    const StudySuiteOutcome resumed = study_suite_checkpointed(kernels, params, 0, second);
    ASSERT_TRUE(resumed.completed);
    ASSERT_EQ(resumed.outcomes.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        // The resumed kernel's recorded JSON (written before the interrupt)
        // must match a fresh render byte for byte — the property that lets
        // the CLI splice checkpointed kernels into --json envelopes.
        EXPECT_EQ(resumed.outcomes[i].json, to_outcome(reference[i]).json) << i;
        EXPECT_EQ(resumed.outcomes[i].name, reference[i].name);
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Cooperative watchdog

TEST_F(DurableTest, DeadlineZeroTripsAtTheFirstCheck) {
    CancellationToken token;
    token.set_deadline_sec(0.0);
    EXPECT_TRUE(token.triggered());
    EXPECT_THROW(token.check(), CancelledError);
    EXPECT_NE(token.reason().find("deadline"), std::string::npos);
}

TEST_F(DurableTest, RequestLatchesReasonAndResetDisarms) {
    CancellationToken token;
    EXPECT_FALSE(token.triggered());
    token.request("operator asked");
    EXPECT_TRUE(token.triggered());
    EXPECT_EQ(token.reason(), "operator asked");
    token.request("second reason ignored");
    EXPECT_EQ(token.reason(), "operator asked");  // first trip wins
    token.reset();
    EXPECT_FALSE(token.triggered());
    EXPECT_EQ(token.reason(), "");
    EXPECT_NO_THROW(token.check());
}

TEST_F(DurableTest, NegativeDeadlineDisarms) {
    CancellationToken token;
    token.set_deadline_sec(0.0);
    EXPECT_TRUE(token.triggered());
    token.reset();
    token.set_deadline_sec(-1.0);
    EXPECT_FALSE(token.triggered());
}

TEST_F(DurableTest, TrippedTokenCancelsACampaign) {
    CancellationToken::global().request("test trip");
    const auto corpus = small_corpus();
    const FaultCampaignConfig config = small_campaign_config();
    EXPECT_THROW(run_campaign(config, corpus), CancelledError);

    // The checkpointed driver converts the trip into a graceful partial
    // outcome instead of throwing.
    const CampaignCheckpointOutcome outcome =
        run_campaign_checkpointed(config, corpus, {}, CampaignCheckpointOptions{});
    EXPECT_FALSE(outcome.completed);
    EXPECT_EQ(outcome.trials_done, 0u);
    EXPECT_EQ(outcome.stop_reason, "test trip");
}

TEST_F(DurableTest, TrippedTokenCancelsStreamReplay) {
    // stream_accumulate polls the token at chunk boundaries; a pre-tripped
    // token must surface as CancelledError from the replay entry points.
    const std::string path = temp_path("cancel.mtsc");
    SyntheticSpec spec;
    spec.kind = SyntheticKind::Stride;
    spec.base.num_accesses = 20000;
    SyntheticSource source(spec, 1024);
    write_trace_stream(path, source);

    CancellationToken::global().request("stop replay");
    EXPECT_THROW(read_trace_stream(path), CancelledError);
    CancellationToken::global().reset();
    EXPECT_EQ(read_trace_stream(path).size(), 20000u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Streaming I/O under fault injection

TEST_F(DurableTest, StreamContainerReadsIdenticallyUnderFaults) {
    const std::string path = temp_path("faulted.mtsc");
    SyntheticSpec spec;
    spec.kind = SyntheticKind::Stride;
    spec.base.num_accesses = 30000;
    SyntheticSource source(spec, 2048);
    write_trace_stream(path, source);
    const MemTrace clean = read_trace_stream(path);

    IoFaultSpec faults;
    faults.enabled = true;
    faults.seed = 13;
    faults.rate = 0.5;  // every other open/block draws a transient failure
    set_io_faults(faults);
    const MemTrace faulted = read_trace_stream(path);
    set_io_faults(IoFaultSpec{});

    ASSERT_EQ(faulted.size(), clean.size());
    for (std::size_t i = 0; i < clean.size(); ++i) {
        ASSERT_EQ(faulted.addrs()[i], clean.addrs()[i]) << i;
        ASSERT_EQ(faulted.values()[i], clean.values()[i]) << i;
    }
    std::remove(path.c_str());
}

TEST_F(DurableTest, BinaryTraceReadsIdenticallyUnderFaults) {
    const std::string path = temp_path("faulted.mtrc");
    SyntheticSpec spec;
    spec.kind = SyntheticKind::Stride;
    spec.base.num_accesses = 4000;
    SyntheticSource source(spec, 512);
    MemTrace trace;
    TraceChunk chunk;
    while (source.next(chunk)) {
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            MemAccess a;
            a.addr = chunk.addrs[i];
            a.cycle = chunk.cycles[i];
            a.value = chunk.values[i];
            a.size = chunk.sizes[i];
            a.kind = chunk.kinds[i];
            trace.add(a);
        }
    }
    save_trace(path, trace);

    IoFaultSpec faults;
    faults.enabled = true;
    faults.seed = 21;
    faults.rate = 0.4;
    set_io_faults(faults);
    const MemTrace faulted = load_trace(path);
    set_io_faults(IoFaultSpec{});

    ASSERT_EQ(faulted.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(faulted.addrs()[i], trace.addrs()[i]) << i;
        ASSERT_EQ(faulted.values()[i], trace.values()[i]) << i;
    }
    std::remove(path.c_str());
}

}  // namespace
}  // namespace memopt
