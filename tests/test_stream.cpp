// Streaming trace pipeline tests: source equivalence (streamed results are
// bit-identical to materialized ones at any job count), the .mtsc container
// round-trip, and corruption handling of the mmap reader.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "compress/diff_codec.hpp"
#include "compress/memsys.hpp"
#include "core/flow.hpp"
#include "core/workload.hpp"
#include "partition/sleep.hpp"
#include "support/assert.hpp"
#include "trace/affinity.hpp"
#include "trace/io.hpp"
#include "trace/profile.hpp"
#include "trace/source.hpp"
#include "trace/stream_file.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace.hpp"

namespace memopt {
namespace {

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "stream_" + name;
}

/// Replay a source to completion and materialize the delivered columns.
MemTrace drain(TraceSource& source) {
    source.reset();
    MemTrace out;
    TraceChunk chunk;
    std::uint64_t expected_first = 0;
    while (source.next(chunk)) {
        EXPECT_EQ(chunk.first_index, expected_first);
        expected_first += chunk.size();
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            MemAccess a;
            a.addr = chunk.addrs[i];
            a.cycle = chunk.cycles[i];
            a.value = chunk.values[i];
            a.size = chunk.sizes[i];
            a.kind = chunk.kinds[i];
            out.add(a);
        }
    }
    EXPECT_EQ(expected_first, source.size());
    return out;
}

void expect_traces_equal(const MemTrace& a, const MemTrace& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.addrs()[i], b.addrs()[i]) << "access " << i;
        ASSERT_EQ(a.cycles()[i], b.cycles()[i]) << "access " << i;
        ASSERT_EQ(a.values()[i], b.values()[i]) << "access " << i;
        ASSERT_EQ(a.sizes()[i], b.sizes()[i]) << "access " << i;
        ASSERT_EQ(a.kinds()[i], b.kinds()[i]) << "access " << i;
    }
}

void expect_profiles_equal(const BlockProfile& a, const BlockProfile& b) {
    ASSERT_EQ(a.block_size(), b.block_size());
    ASSERT_EQ(a.num_blocks(), b.num_blocks());
    for (std::size_t i = 0; i < a.num_blocks(); ++i) {
        EXPECT_EQ(a.counts(i).reads, b.counts(i).reads) << "block " << i;
        EXPECT_EQ(a.counts(i).writes, b.counts(i).writes) << "block " << i;
    }
}

void expect_matrices_equal(const AffinityMatrix& a, const AffinityMatrix& b) {
    ASSERT_EQ(a.num_blocks(), b.num_blocks());
    EXPECT_EQ(a.total(), b.total());
    EXPECT_EQ(a.stored_pairs(), b.stored_pairs());
    for (std::size_t i = 0; i < a.num_blocks(); ++i) {
        std::vector<std::pair<std::size_t, double>> ra, rb;
        a.for_each_neighbor(i, [&](std::size_t j, double w) { ra.emplace_back(j, w); });
        b.for_each_neighbor(i, [&](std::size_t j, double w) { rb.emplace_back(j, w); });
        ASSERT_EQ(ra, rb) << "row " << i;
        EXPECT_EQ(a.at(i, i), b.at(i, i)) << "diagonal " << i;
    }
}

void expect_energy_equal(const EnergyBreakdown& a, const EnergyBreakdown& b) {
    ASSERT_EQ(a.components().size(), b.components().size());
    for (std::size_t i = 0; i < a.components().size(); ++i) {
        EXPECT_EQ(a.components()[i].first, b.components()[i].first);
        EXPECT_EQ(a.components()[i].second, b.components()[i].second)
            << "component " << a.components()[i].first;
    }
}

// A value-carrying trace with mixed sizes for the simulators.
MemTrace mixed_trace(std::size_t n) {
    const SyntheticSpec spec =
        parse_synthetic_spec("hotspot,span=16384,n=" + std::to_string(n) +
                             ",seed=11,write=0.4,hotspots=3,hotspot-bytes=512,hot-frac=0.85");
    return materialize_synthetic(spec);
}

// ------------------------------------------------------------- sources ----

TEST(TraceChunkTest, ColumnMismatchThrows) {
    const std::vector<std::uint64_t> two64(2), one64(1);
    const std::vector<std::uint32_t> two32(2);
    const std::vector<std::uint8_t> two8(2);
    const std::vector<AccessKind> twok(2, AccessKind::Read);
    EXPECT_NO_THROW(TraceChunk(0, two64, two64, two32, two8, twok));
    EXPECT_THROW(TraceChunk(0, two64, one64, two32, two8, twok), Error);
    EXPECT_THROW(TraceChunk(0, two64, two64, {}, two8, twok), Error);
}

TEST(MaterializedSourceTest, ChunksAreZeroCopyViews) {
    const MemTrace trace = mixed_trace(1000);
    MaterializedSource source(trace, 256);
    EXPECT_TRUE(source.stable_chunks());
    TraceChunk chunk;
    ASSERT_TRUE(source.next(chunk));
    EXPECT_EQ(chunk.size(), 256u);
    // Spans point straight into the trace's columns — no copy was made.
    EXPECT_EQ(chunk.addrs.data(), trace.addrs().data());
    EXPECT_EQ(chunk.kinds.data(), trace.kinds().data());
    ASSERT_TRUE(source.next(chunk));
    EXPECT_EQ(chunk.addrs.data(), trace.addrs().data() + 256);
    EXPECT_EQ(chunk.first_index, 256u);
}

TEST(MaterializedSourceTest, SummarySeededFromTraceCounters) {
    const MemTrace trace = mixed_trace(500);
    MaterializedSource source(trace);
    const TraceSummary& sum = source.summary();
    EXPECT_EQ(sum.accesses, trace.size());
    EXPECT_EQ(sum.reads, trace.read_count());
    EXPECT_EQ(sum.writes, trace.write_count());
    EXPECT_EQ(sum.min_addr, trace.min_addr());
    EXPECT_EQ(sum.span_pow2(), trace.address_span_pow2());
}

TEST(MaterializedSourceTest, ZeroChunkSizeThrows) {
    const MemTrace trace = mixed_trace(10);
    EXPECT_THROW(MaterializedSource(trace, 0), Error);
}

TEST(SyntheticSourceTest, MatchesMaterializedGenerator) {
    const char* specs[] = {
        "uniform,span=8192,n=5000,seed=3,write=0.25",
        "hotspot,span=8192,n=5000,seed=4,hotspots=2,hotspot-bytes=256,hot-frac=0.9",
        "stride,span=8192,n=5000,seed=5,stride=64",
        "two-phase,span=8192,n=5000,seed=6",
    };
    for (const char* text : specs) {
        const SyntheticSpec spec = parse_synthetic_spec(text);
        const MemTrace expected = materialize_synthetic(spec);
        SyntheticSource source(spec, 777);  // chunk size not dividing n
        EXPECT_EQ(source.size(), expected.size());
        expect_traces_equal(drain(source), expected);
        // summary() takes its own pass, then replay restarts cleanly.
        EXPECT_EQ(source.summary().accesses, expected.size());
        expect_traces_equal(drain(source), expected);
    }
}

TEST(SyntheticSourceTest, ResetMidStreamRestartsExactly) {
    const SyntheticSpec spec = parse_synthetic_spec("uniform,span=4096,n=3000,seed=9");
    const MemTrace expected = materialize_synthetic(spec);
    SyntheticSource source(spec, 100);
    TraceChunk chunk;
    ASSERT_TRUE(source.next(chunk));
    ASSERT_TRUE(source.next(chunk));
    source.reset();
    expect_traces_equal(drain(source), expected);
}

// ------------------------------------------- profile/affinity equality ----

TEST(StreamEquivalenceTest, ProfileMatchesAtAnyJobCount) {
    // Big enough that the parallel replay actually shards (> 2 * 64Ki).
    const SyntheticSpec spec = parse_synthetic_spec("uniform,span=65536,n=200000,seed=2");
    const MemTrace trace = materialize_synthetic(spec);
    const BlockProfile expected = BlockProfile::from_trace(trace, 256, 1);
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        SyntheticSource source(spec, 10000);
        expect_profiles_equal(BlockProfile::from_source(source, 256, jobs), expected);
        MaterializedSource mat(trace, 10000);
        expect_profiles_equal(BlockProfile::from_source(mat, 256, jobs), expected);
    }
}

TEST(StreamEquivalenceTest, AffinityMatchesAtAnyJobCount) {
    const SyntheticSpec spec =
        parse_synthetic_spec("two-phase,span=32768,n=200000,seed=13");
    const MemTrace trace = materialize_synthetic(spec);
    const BlockProfile profile = BlockProfile::from_trace(trace, 256, 1);
    const AffinityMatrix t_expected = transition_affinity(trace, profile, 1);
    const AffinityMatrix w_expected = windowed_affinity(trace, profile, 16, 1);
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        SyntheticSource source(spec, 10000);
        expect_matrices_equal(transition_affinity(source, profile, jobs), t_expected);
        expect_matrices_equal(windowed_affinity(source, profile, 16, jobs), w_expected);
    }
}

TEST(StreamEquivalenceTest, SparseAffinityMatchesOnLargeSpans) {
    // > 1024 blocks at 256 B forces the CSR representation.
    const SyntheticSpec spec = parse_synthetic_spec("uniform,span=1048576,n=150000,seed=21");
    const MemTrace trace = materialize_synthetic(spec);
    const BlockProfile profile = BlockProfile::from_trace(trace, 256, 1);
    ASSERT_GT(profile.num_blocks(), kAffinityDenseMaxBlocks);
    const AffinityMatrix expected = windowed_affinity(trace, profile, 8, 1);
    ASSERT_TRUE(expected.is_sparse());
    SyntheticSource source(spec, 10000);
    expect_matrices_equal(windowed_affinity(source, profile, 8, 8), expected);
}

TEST(StreamEquivalenceTest, FusedBuilderMatchesTwoPass) {
    const SyntheticSpec spec =
        parse_synthetic_spec("hotspot,span=32768,n=200000,seed=5,hotspots=4,"
                             "hotspot-bytes=1024,hot-frac=0.8");
    const MemTrace trace = materialize_synthetic(spec);
    const BlockProfile p_expected = BlockProfile::from_trace(trace, 256, 1);
    const AffinityMatrix a_expected = windowed_affinity(trace, p_expected, 32, 1);
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        SyntheticSource source(spec, 10000);
        const ProfileAffinity pa = build_profile_and_affinity(source, 256, 32, jobs);
        expect_profiles_equal(pa.profile, p_expected);
        expect_matrices_equal(pa.affinity, a_expected);
    }
}

// ----------------------------------------------- replay-engine equality ----

TEST(StreamEquivalenceTest, SleepReplayMatches) {
    const MemTrace trace = mixed_trace(50000);
    FlowParams fp;
    fp.constraints.max_banks = 4;
    const FlowResult fr = MemoryOptimizationFlow(fp).run(trace, ClusterMethod::Frequency);
    const SleepReport expected = evaluate_partition_sleepy(fr.solution.arch, fr.map, trace,
                                                           fp.energy, SleepParams{});
    MaterializedSource source(trace, 4096);
    const SleepReport streamed = evaluate_partition_sleepy(fr.solution.arch, fr.map, source,
                                                           fp.energy, SleepParams{});
    expect_energy_equal(streamed.energy, expected.energy);
    ASSERT_EQ(streamed.banks.size(), expected.banks.size());
    for (std::size_t i = 0; i < expected.banks.size(); ++i) {
        EXPECT_EQ(streamed.banks[i].accesses, expected.banks[i].accesses);
        EXPECT_EQ(streamed.banks[i].wakeups, expected.banks[i].wakeups);
        EXPECT_EQ(streamed.banks[i].asleep_cycles, expected.banks[i].asleep_cycles);
    }
}

TEST(StreamEquivalenceTest, CompressedMemoryReplayMatches) {
    const MemTrace trace = mixed_trace(30000);
    const DiffCodec codec;
    CompressedMemConfig config;
    config.cache.size_bytes = 1024;
    config.cache.line_bytes = 32;
    const CompressedMemReport expected =
        CompressedMemorySim(config, &codec).run(trace, {}, 0);
    MaterializedSource source(trace, 4096);
    const CompressedMemReport streamed =
        CompressedMemorySim(config, &codec).run(source, {}, 0);
    EXPECT_EQ(streamed.writeback_lines, expected.writeback_lines);
    EXPECT_EQ(streamed.fill_lines, expected.fill_lines);
    EXPECT_EQ(streamed.raw_traffic_bytes, expected.raw_traffic_bytes);
    EXPECT_EQ(streamed.actual_traffic_bytes, expected.actual_traffic_bytes);
    expect_energy_equal(streamed.energy, expected.energy);
}

TEST(StreamEquivalenceTest, CacheHierarchyReplayMatches) {
    const MemTrace trace = mixed_trace(30000);
    CacheConfig l1, l2;
    l1.size_bytes = 512;
    l1.line_bytes = 16;
    l2.size_bytes = 4096;
    l2.line_bytes = 32;
    CacheHierarchy expected(l1, l2);
    expected.replay(trace);
    CacheHierarchy streamed(l1, l2);
    MaterializedSource source(trace, 4096);
    streamed.replay(source);
    EXPECT_EQ(streamed.traffic().line_fetches, expected.traffic().line_fetches);
    EXPECT_EQ(streamed.traffic().line_writes, expected.traffic().line_writes);
    EXPECT_EQ(streamed.traffic().word_writes, expected.traffic().word_writes);
    EXPECT_EQ(streamed.l1().stats().read_hits, expected.l1().stats().read_hits);
    EXPECT_EQ(streamed.l2().stats().read_misses, expected.l2().stats().read_misses);
}

TEST(StreamEquivalenceTest, FlowRunAndCompareMatch) {
    const SyntheticSpec spec =
        parse_synthetic_spec("hotspot,span=16384,n=120000,seed=7,hotspots=3,"
                             "hotspot-bytes=512,hot-frac=0.85");
    const MemTrace trace = materialize_synthetic(spec);
    FlowParams fp;
    fp.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(fp);
    for (const ClusterMethod method :
         {ClusterMethod::None, ClusterMethod::Frequency, ClusterMethod::Affinity}) {
        const FlowResult expected = flow.run(trace, method);
        SyntheticSource source(spec, 10000);
        const FlowResult streamed = flow.run(source, method);
        expect_energy_equal(streamed.energy, expected.energy);
        ASSERT_EQ(streamed.solution.arch.num_banks(), expected.solution.arch.num_banks());
        for (std::size_t b = 0; b < expected.solution.arch.num_banks(); ++b) {
            EXPECT_EQ(streamed.solution.arch.banks()[b].first_block,
                      expected.solution.arch.banks()[b].first_block);
            EXPECT_EQ(streamed.solution.arch.banks()[b].num_blocks,
                      expected.solution.arch.banks()[b].num_blocks);
        }
    }
    const FlowComparison expected = flow.compare(trace, ClusterMethod::Affinity);
    SyntheticSource source(spec, 10000);
    const FlowComparison streamed = flow.compare(source, ClusterMethod::Affinity);
    expect_energy_equal(streamed.monolithic, expected.monolithic);
    expect_energy_equal(streamed.partitioned.energy, expected.partitioned.energy);
    expect_energy_equal(streamed.clustered.energy, expected.clustered.energy);
}

// ------------------------------------------------------ mtsc container ----

class StreamFileTest : public ::testing::Test {
protected:
    void TearDown() override {
        for (const std::string& path : cleanup_) std::remove(path.c_str());
    }

    std::string path(const std::string& name) {
        const std::string p = temp_path(name);
        cleanup_.push_back(p);
        return p;
    }

    std::vector<std::string> cleanup_;
};

TEST_F(StreamFileTest, RoundTripUncompressed) {
    const MemTrace trace = mixed_trace(10000);
    const std::string file = path("plain.mtsc");
    StreamWriteOptions opts;
    opts.chunk_accesses = 1024;
    const TraceSummary written = write_trace_stream(file, trace, opts);
    EXPECT_EQ(written.accesses, trace.size());
    EXPECT_EQ(written.reads, trace.read_count());

    MmapBinarySource source(file);
    EXPECT_FALSE(source.compressed());
    EXPECT_TRUE(source.stable_chunks());
    EXPECT_EQ(source.chunk_accesses(), 1024u);
    EXPECT_EQ(source.size(), trace.size());
    // The summary comes straight from the header — no replay needed.
    EXPECT_EQ(source.summary().reads, trace.read_count());
    EXPECT_EQ(source.summary().max_addr, written.max_addr);
    expect_traces_equal(drain(source), trace);
    expect_traces_equal(drain(source), trace);  // second pass after reset
}

TEST_F(StreamFileTest, RoundTripCompressed) {
    const MemTrace trace = mixed_trace(10000);
    const std::string file = path("packed.mtsc");
    StreamWriteOptions opts;
    opts.chunk_accesses = 2048;
    opts.compress = true;
    write_trace_stream(file, trace, opts);
    MmapBinarySource source(file);
    EXPECT_TRUE(source.compressed());
    EXPECT_FALSE(source.stable_chunks());
    expect_traces_equal(drain(source), trace);
    expect_traces_equal(drain(source), trace);
}

TEST_F(StreamFileTest, CompressionShrinksRegularTraces) {
    // A strided trace has small address deltas — the diff codec should win.
    const MemTrace trace =
        materialize_synthetic(parse_synthetic_spec("stride,span=65536,n=20000,stride=4"));
    const std::string plain = path("a.mtsc"), packed = path("b.mtsc");
    write_trace_stream(plain, trace);
    StreamWriteOptions opts;
    opts.compress = true;
    write_trace_stream(packed, trace, opts);
    std::ifstream pa(plain, std::ios::ate | std::ios::binary);
    std::ifstream pb(packed, std::ios::ate | std::ios::binary);
    EXPECT_LT(pb.tellg(), pa.tellg());
}

TEST_F(StreamFileTest, WriterRechunksArbitrarySourceChunks) {
    const MemTrace trace = mixed_trace(5000);
    const std::string file = path("rechunk.mtsc");
    MaterializedSource source(trace, 333);  // deliberately != container chunk
    StreamWriteOptions opts;
    opts.chunk_accesses = 1000;
    write_trace_stream(file, source, opts);
    MmapBinarySource reader(file);
    EXPECT_EQ(reader.chunk_accesses(), 1000u);
    EXPECT_EQ(reader.block_count(), 5u);
    expect_traces_equal(drain(reader), trace);
}

TEST_F(StreamFileTest, ReadTraceStreamMaterializes) {
    const MemTrace trace = mixed_trace(3000);
    const std::string file = path("mat.mtsc");
    write_trace_stream(file, trace);
    expect_traces_equal(read_trace_stream(file), trace);
}

TEST_F(StreamFileTest, EmptyTraceRoundTrips) {
    const std::string file = path("empty.mtsc");
    write_trace_stream(file, MemTrace{});
    MmapBinarySource source(file);
    EXPECT_EQ(source.size(), 0u);
    TraceChunk chunk;
    EXPECT_FALSE(source.next(chunk));
}

TEST_F(StreamFileTest, InvalidWriteOptionsThrow) {
    const MemTrace trace = mixed_trace(10);
    StreamWriteOptions opts;
    opts.chunk_accesses = 0;
    EXPECT_THROW(write_trace_stream(path("bad0.mtsc"), trace, opts), Error);
    opts.chunk_accesses = kMaxStreamChunkAccesses + 1;
    EXPECT_THROW(write_trace_stream(path("bad1.mtsc"), trace, opts), Error);
}

// ------------------------------------------------- corruption handling ----

// Byte-patching helpers for the fuzz cases below.
std::vector<std::uint8_t> slurp(const std::string& file) {
    std::ifstream is(file, std::ios::binary);
    return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(is)),
                                     std::istreambuf_iterator<char>());
}

void spit(const std::string& file, const std::vector<std::uint8_t>& bytes) {
    std::ofstream os(file, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
}

void store_le64(std::vector<std::uint8_t>& bytes, std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t test_fnv1a(const std::uint8_t* data, std::size_t n) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

class StreamFuzzTest : public StreamFileTest {
protected:
    /// Write a small valid container and return its bytes.
    std::vector<std::uint8_t> valid_container(const std::string& name,
                                              std::size_t n = 600,
                                              std::size_t chunk = 256,
                                              bool compress = false) {
        file_ = path(name);
        StreamWriteOptions opts;
        opts.chunk_accesses = chunk;
        opts.compress = compress;
        write_trace_stream(file_, mixed_trace(n), opts);
        return slurp(file_);
    }

    void expect_rejected(const std::vector<std::uint8_t>& bytes) {
        spit(file_, bytes);
        EXPECT_THROW(
            {
                MmapBinarySource source(file_);
                TraceChunk chunk;
                while (source.next(chunk)) {
                }
            },
            Error);
    }

    std::string file_;
};

TEST_F(StreamFuzzTest, MissingFileThrows) {
    EXPECT_THROW(MmapBinarySource("/nonexistent/trace.mtsc"), Error);
}

TEST_F(StreamFuzzTest, BadMagicRejected) {
    auto bytes = valid_container("magic.mtsc");
    bytes[0] ^= 0xFF;
    expect_rejected(bytes);
}

TEST_F(StreamFuzzTest, BadVersionRejected) {
    auto bytes = valid_container("version.mtsc");
    bytes[4] = 99;
    expect_rejected(bytes);
}

TEST_F(StreamFuzzTest, TruncatedHeaderRejected) {
    auto bytes = valid_container("header.mtsc");
    bytes.resize(40);
    expect_rejected(bytes);
}

TEST_F(StreamFuzzTest, TruncatedOffsetTableRejected) {
    auto bytes = valid_container("table.mtsc");
    bytes.resize(64 + 4);  // header intact, table cut short
    expect_rejected(bytes);
}

TEST_F(StreamFuzzTest, OversizedBlockCountRejectedWithoutAllocation) {
    auto bytes = valid_container("count.mtsc");
    // A lying block count must fail the bounded offset-table check before
    // it can drive any count-sized allocation.
    bytes[20] = 0xFF;
    bytes[21] = 0xFF;
    bytes[22] = 0xFF;
    bytes[23] = 0x7F;
    expect_rejected(bytes);
}

TEST_F(StreamFuzzTest, ZeroChunkSizeRejected) {
    auto bytes = valid_container("chunk0.mtsc");
    bytes[16] = bytes[17] = bytes[18] = bytes[19] = 0;
    expect_rejected(bytes);
}

TEST_F(StreamFuzzTest, TruncatedBlockPayloadRejected) {
    auto bytes = valid_container("payload.mtsc");
    bytes.resize(bytes.size() - 16);
    expect_rejected(bytes);
}

TEST_F(StreamFuzzTest, FlippedPayloadByteFailsChecksum) {
    auto bytes = valid_container("flip.mtsc");
    bytes[bytes.size() - 3] ^= 0x40;  // inside the last block's payload
    expect_rejected(bytes);
}

TEST_F(StreamFuzzTest, CorruptSummaryCountsRejected) {
    auto bytes = valid_container("summary.mtsc");
    store_le64(bytes, 48, 12345);  // reads counter no longer sums with writes
    expect_rejected(bytes);
}

TEST_F(StreamFuzzTest, InvalidSizeByteRejectedEvenWithValidChecksum) {
    // Patch a sizes-column byte to an invalid width and re-seal the block's
    // checksum: content validation must still reject the record.
    auto bytes = valid_container("size.mtsc", 100, 256);  // single block
    const std::size_t block_off = 64 + 8;                 // header + 1-entry table
    const std::size_t payload_off = block_off + 24;
    const std::size_t n = 100;
    const std::size_t sizes_off = payload_off + 8 * n + 8 * n + 4 * n;
    bytes[sizes_off + 7] = 3;  // not one of 1/2/4/8
    const std::size_t payload_bytes = bytes.size() - payload_off;
    store_le64(bytes, block_off + 16, test_fnv1a(bytes.data() + payload_off, payload_bytes));
    expect_rejected(bytes);
}

TEST_F(StreamFuzzTest, AddressOutsideSummaryRejectedEvenWithValidChecksum) {
    // Patch an addrs-column entry past the header's max_addr and re-seal
    // the block checksum: the per-block FNV-1a only proves the payload
    // matches its own seal, so content validation must still pin every
    // address inside the header summary before delivery.
    auto bytes = valid_container("addr.mtsc", 100, 256);  // single block
    const std::size_t block_off = 64 + 8;                 // header + 1-entry table
    const std::size_t payload_off = block_off + 24;
    store_le64(bytes, payload_off + 8 * 7, std::uint64_t{1} << 60);  // addrs[7]
    const std::size_t payload_bytes = bytes.size() - payload_off;
    store_le64(bytes, block_off + 16, test_fnv1a(bytes.data() + payload_off, payload_bytes));
    expect_rejected(bytes);
}

TEST_F(StreamFuzzTest, ProfileFromPatchedAddressesFailsWithDiagnostic) {
    // BlockProfile::from_source sizes its count arrays from the source
    // summary and indexes them without per-access bounds checks; a payload
    // whose addresses exceed the header summary must surface as a block
    // diagnostic from the source, never as an out-of-bounds write.
    auto bytes = valid_container("addrprof.mtsc", 100, 256);
    const std::size_t block_off = 64 + 8;
    const std::size_t payload_off = block_off + 24;
    store_le64(bytes, payload_off + 8 * 3, std::uint64_t{1} << 44);
    const std::size_t payload_bytes = bytes.size() - payload_off;
    store_le64(bytes, block_off + 16, test_fnv1a(bytes.data() + payload_off, payload_bytes));
    spit(file_, bytes);
    MmapBinarySource source(file_);
    EXPECT_THROW(BlockProfile::from_source(source, 64, 1), Error);
}

TEST_F(StreamFuzzTest, HugeHeaderCountRejectedAgainstFileSize) {
    // Claim block_count * 2^24 accesses with a matching chunk size: the
    // block-count/offset-table checks all pass, but an uncompressed
    // container cannot hold 22 bytes per claimed access, so the open-time
    // file-size bound must reject it before any count-sized allocation.
    auto bytes = valid_container("hugecount.mtsc", 600, 256);  // 3 blocks
    const std::uint64_t count = std::uint64_t{3} << 24;
    store_le64(bytes, 8, count);
    // chunk_accesses = 2^24 (u32 at 16) and block_count = 3 (u32 at 20).
    store_le64(bytes, 16, (std::uint64_t{3} << 32) | (std::uint64_t{1} << 24));
    store_le64(bytes, 48, count);  // reads
    store_le64(bytes, 56, 0);      // writes
    expect_rejected(bytes);
}

TEST_F(StreamFuzzTest, HugeHeaderCountCompressedFailsFastOnFirstBlock) {
    // A compressed container has no fixed per-access payload size, so the
    // lying count survives the open-time checks; read_trace_stream must
    // clamp its count-driven reserve and fail on the first block's
    // access-count mismatch rather than allocate from the header.
    auto bytes = valid_container("hugecountz.mtsc", 600, 256, /*compress=*/true);
    const std::uint64_t count = std::uint64_t{3} << 24;
    store_le64(bytes, 8, count);
    store_le64(bytes, 16, (std::uint64_t{3} << 32) | (std::uint64_t{1} << 24));
    store_le64(bytes, 48, count);
    store_le64(bytes, 56, 0);
    spit(file_, bytes);
    EXPECT_THROW(read_trace_stream(file_), Error);
}

TEST_F(StreamFuzzTest, InvalidKindByteRejectedEvenWithValidChecksum) {
    auto bytes = valid_container("kind.mtsc", 100, 256);
    const std::size_t block_off = 64 + 8;
    const std::size_t payload_off = block_off + 24;
    const std::size_t n = 100;
    const std::size_t kinds_off = payload_off + 8 * n + 8 * n + 4 * n + n;
    bytes[kinds_off + 5] = 7;  // AccessKind is 0 or 1
    const std::size_t payload_bytes = bytes.size() - payload_off;
    store_le64(bytes, block_off + 16, test_fnv1a(bytes.data() + payload_off, payload_bytes));
    expect_rejected(bytes);
}

// ------------------------------------------------------- mtrc streaming ----

TEST_F(StreamFileTest, BinaryFileSourceMatchesLoadTrace) {
    const MemTrace trace = mixed_trace(5000);
    const std::string file = path("stream.mtrc");
    save_trace(file, trace);
    BinaryFileSource source(file, 512);
    EXPECT_EQ(source.size(), trace.size());
    expect_traces_equal(drain(source), trace);
    expect_traces_equal(drain(source), trace);  // reset + second pass
}

TEST_F(StreamFileTest, BinaryFileSourceRejectsCorruptStream) {
    const MemTrace trace = mixed_trace(100);
    const std::string file = path("corrupt.mtrc");
    save_trace(file, trace);
    auto bytes = slurp(file);
    bytes.resize(bytes.size() - 10);
    spit(file, bytes);
    EXPECT_THROW(
        {
            BinaryFileSource source(file);
            TraceChunk chunk;
            while (source.next(chunk)) {
            }
        },
        Error);
}

// --------------------------------------------------- streaming writers ----

TEST_F(StreamFileTest, StreamingTextAndBinaryWritersMatchMaterialized) {
    const MemTrace trace = mixed_trace(2000);
    MaterializedSource source(trace, 300);
    std::ostringstream text_a, text_b, bin_a, bin_b;
    write_trace_text(text_a, trace);
    write_trace_text(text_b, source);
    EXPECT_EQ(text_a.str(), text_b.str());
    write_trace_binary(bin_a, trace);
    write_trace_binary(bin_b, source);
    EXPECT_EQ(bin_a.str(), bin_b.str());
}

// ------------------------------------------------------ repository specs ----

TEST(WorkloadStreamTest, OpenTraceSourceResolvesSpecs) {
    WorkloadRepository repo;
    const auto synth = repo.open_trace_source("synthetic:uniform,span=4096,n=1234,seed=1");
    EXPECT_EQ(synth->size(), 1234u);
    EXPECT_THROW(repo.open_trace_source("synthetic:nope"), Error);
    EXPECT_THROW(repo.open_trace_source("no-such-kernel"), Error);
    EXPECT_THROW(repo.open_trace_source("/nonexistent/trace.mtrc"), Error);
}

TEST(WorkloadStreamTest, KernelSourceAliasesCachedArtifact) {
    WorkloadRepository repo;
    const auto source = repo.open_trace_source("matmul");
    const KernelRunPtr artifact = repo.run("matmul");
    EXPECT_EQ(repo.simulation_count(), 1u);  // one simulation serves both
    EXPECT_EQ(source->size(), artifact->result.data_trace.size());
    TraceChunk chunk;
    ASSERT_TRUE(source->next(chunk));
    // Chunks alias the repository's trace columns — no copy was made.
    EXPECT_EQ(chunk.addrs.data(), artifact->result.data_trace.addrs().data());
}

}  // namespace
}  // namespace memopt
