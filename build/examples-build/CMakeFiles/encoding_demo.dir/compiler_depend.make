# Empty compiler generated dependencies file for encoding_demo.
# This may be replaced when dependencies are built.
