file(REMOVE_RECURSE
  "../examples/encoding_demo"
  "../examples/encoding_demo.pdb"
  "CMakeFiles/encoding_demo.dir/encoding_demo.cpp.o"
  "CMakeFiles/encoding_demo.dir/encoding_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
