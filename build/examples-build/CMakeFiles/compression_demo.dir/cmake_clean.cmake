file(REMOVE_RECURSE
  "../examples/compression_demo"
  "../examples/compression_demo.pdb"
  "CMakeFiles/compression_demo.dir/compression_demo.cpp.o"
  "CMakeFiles/compression_demo.dir/compression_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
