file(REMOVE_RECURSE
  "../examples/multi_app"
  "../examples/multi_app.pdb"
  "CMakeFiles/multi_app.dir/multi_app.cpp.o"
  "CMakeFiles/multi_app.dir/multi_app.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
