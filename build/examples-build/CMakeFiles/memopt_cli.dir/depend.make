# Empty dependencies file for memopt_cli.
# This may be replaced when dependencies are built.
