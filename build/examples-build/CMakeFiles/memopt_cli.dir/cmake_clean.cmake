file(REMOVE_RECURSE
  "../examples/memopt_cli"
  "../examples/memopt_cli.pdb"
  "CMakeFiles/memopt_cli.dir/memopt_cli.cpp.o"
  "CMakeFiles/memopt_cli.dir/memopt_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memopt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
