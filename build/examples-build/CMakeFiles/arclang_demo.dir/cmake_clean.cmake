file(REMOVE_RECURSE
  "../examples/arclang_demo"
  "../examples/arclang_demo.pdb"
  "CMakeFiles/arclang_demo.dir/arclang_demo.cpp.o"
  "CMakeFiles/arclang_demo.dir/arclang_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arclang_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
