# Empty dependencies file for arclang_demo.
# This may be replaced when dependencies are built.
