file(REMOVE_RECURSE
  "../examples/energy_report"
  "../examples/energy_report.pdb"
  "CMakeFiles/energy_report.dir/energy_report.cpp.o"
  "CMakeFiles/energy_report.dir/energy_report.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
