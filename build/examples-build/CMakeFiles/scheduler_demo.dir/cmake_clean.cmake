file(REMOVE_RECURSE
  "../examples/scheduler_demo"
  "../examples/scheduler_demo.pdb"
  "CMakeFiles/scheduler_demo.dir/scheduler_demo.cpp.o"
  "CMakeFiles/scheduler_demo.dir/scheduler_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
