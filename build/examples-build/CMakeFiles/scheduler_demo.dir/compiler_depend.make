# Empty compiler generated dependencies file for scheduler_demo.
# This may be replaced when dependencies are built.
