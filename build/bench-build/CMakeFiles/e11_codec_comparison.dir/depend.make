# Empty dependencies file for e11_codec_comparison.
# This may be replaced when dependencies are built.
