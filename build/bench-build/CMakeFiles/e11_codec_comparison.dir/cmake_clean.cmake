file(REMOVE_RECURSE
  "../bench/e11_codec_comparison"
  "../bench/e11_codec_comparison.pdb"
  "CMakeFiles/e11_codec_comparison.dir/e11_codec_comparison.cpp.o"
  "CMakeFiles/e11_codec_comparison.dir/e11_codec_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_codec_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
