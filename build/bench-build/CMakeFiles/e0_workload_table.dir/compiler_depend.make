# Empty compiler generated dependencies file for e0_workload_table.
# This may be replaced when dependencies are built.
