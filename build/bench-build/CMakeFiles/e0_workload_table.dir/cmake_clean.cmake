file(REMOVE_RECURSE
  "../bench/e0_workload_table"
  "../bench/e0_workload_table.pdb"
  "CMakeFiles/e0_workload_table.dir/e0_workload_table.cpp.o"
  "CMakeFiles/e0_workload_table.dir/e0_workload_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e0_workload_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
