file(REMOVE_RECURSE
  "../bench/e9_scheduler_table"
  "../bench/e9_scheduler_table.pdb"
  "CMakeFiles/e9_scheduler_table.dir/e9_scheduler_table.cpp.o"
  "CMakeFiles/e9_scheduler_table.dir/e9_scheduler_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_scheduler_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
