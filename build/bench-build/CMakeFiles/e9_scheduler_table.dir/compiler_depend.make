# Empty compiler generated dependencies file for e9_scheduler_table.
# This may be replaced when dependencies are built.
