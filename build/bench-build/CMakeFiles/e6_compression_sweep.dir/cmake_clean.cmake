file(REMOVE_RECURSE
  "../bench/e6_compression_sweep"
  "../bench/e6_compression_sweep.pdb"
  "CMakeFiles/e6_compression_sweep.dir/e6_compression_sweep.cpp.o"
  "CMakeFiles/e6_compression_sweep.dir/e6_compression_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_compression_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
