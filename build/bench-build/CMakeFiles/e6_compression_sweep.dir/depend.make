# Empty dependencies file for e6_compression_sweep.
# This may be replaced when dependencies are built.
