file(REMOVE_RECURSE
  "../bench/e10_sleep_ablation"
  "../bench/e10_sleep_ablation.pdb"
  "CMakeFiles/e10_sleep_ablation.dir/e10_sleep_ablation.cpp.o"
  "CMakeFiles/e10_sleep_ablation.dir/e10_sleep_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_sleep_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
