# Empty compiler generated dependencies file for e10_sleep_ablation.
# This may be replaced when dependencies are built.
