file(REMOVE_RECURSE
  "../bench/e5_compression_risc"
  "../bench/e5_compression_risc.pdb"
  "CMakeFiles/e5_compression_risc.dir/e5_compression_risc.cpp.o"
  "CMakeFiles/e5_compression_risc.dir/e5_compression_risc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_compression_risc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
