# Empty dependencies file for e5_compression_risc.
# This may be replaced when dependencies are built.
