# Empty compiler generated dependencies file for e8_encoding_ablation.
# This may be replaced when dependencies are built.
