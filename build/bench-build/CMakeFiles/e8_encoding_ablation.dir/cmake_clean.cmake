file(REMOVE_RECURSE
  "../bench/e8_encoding_ablation"
  "../bench/e8_encoding_ablation.pdb"
  "CMakeFiles/e8_encoding_ablation.dir/e8_encoding_ablation.cpp.o"
  "CMakeFiles/e8_encoding_ablation.dir/e8_encoding_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_encoding_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
