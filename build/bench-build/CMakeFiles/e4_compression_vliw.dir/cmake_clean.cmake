file(REMOVE_RECURSE
  "../bench/e4_compression_vliw"
  "../bench/e4_compression_vliw.pdb"
  "CMakeFiles/e4_compression_vliw.dir/e4_compression_vliw.cpp.o"
  "CMakeFiles/e4_compression_vliw.dir/e4_compression_vliw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_compression_vliw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
