# Empty compiler generated dependencies file for e4_compression_vliw.
# This may be replaced when dependencies are built.
