file(REMOVE_RECURSE
  "../bench/e2_bank_sweep"
  "../bench/e2_bank_sweep.pdb"
  "CMakeFiles/e2_bank_sweep.dir/e2_bank_sweep.cpp.o"
  "CMakeFiles/e2_bank_sweep.dir/e2_bank_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_bank_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
