# Empty compiler generated dependencies file for e2_bank_sweep.
# This may be replaced when dependencies are built.
