file(REMOVE_RECURSE
  "../bench/e1_clustering_table"
  "../bench/e1_clustering_table.pdb"
  "CMakeFiles/e1_clustering_table.dir/e1_clustering_table.cpp.o"
  "CMakeFiles/e1_clustering_table.dir/e1_clustering_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_clustering_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
