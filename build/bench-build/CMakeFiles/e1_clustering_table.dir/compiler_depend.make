# Empty compiler generated dependencies file for e1_clustering_table.
# This may be replaced when dependencies are built.
