file(REMOVE_RECURSE
  "libmemopt_bench_util.a"
)
