file(REMOVE_RECURSE
  "CMakeFiles/memopt_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/memopt_bench_util.dir/bench_util.cpp.o.d"
  "CMakeFiles/memopt_bench_util.dir/compression_table.cpp.o"
  "CMakeFiles/memopt_bench_util.dir/compression_table.cpp.o.d"
  "libmemopt_bench_util.a"
  "libmemopt_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memopt_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
