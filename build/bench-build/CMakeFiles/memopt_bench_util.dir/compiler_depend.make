# Empty compiler generated dependencies file for memopt_bench_util.
# This may be replaced when dependencies are built.
