# Empty compiler generated dependencies file for e7_encoding_table.
# This may be replaced when dependencies are built.
