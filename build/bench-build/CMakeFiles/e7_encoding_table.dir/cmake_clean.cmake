file(REMOVE_RECURSE
  "../bench/e7_encoding_table"
  "../bench/e7_encoding_table.pdb"
  "CMakeFiles/e7_encoding_table.dir/e7_encoding_table.cpp.o"
  "CMakeFiles/e7_encoding_table.dir/e7_encoding_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_encoding_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
