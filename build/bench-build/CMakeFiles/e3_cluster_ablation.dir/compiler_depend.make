# Empty compiler generated dependencies file for e3_cluster_ablation.
# This may be replaced when dependencies are built.
