file(REMOVE_RECURSE
  "../bench/e3_cluster_ablation"
  "../bench/e3_cluster_ablation.pdb"
  "CMakeFiles/e3_cluster_ablation.dir/e3_cluster_ablation.cpp.o"
  "CMakeFiles/e3_cluster_ablation.dir/e3_cluster_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_cluster_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
