# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(shape_e0_workload_table "/root/repo/build/bench/e0_workload_table")
set_tests_properties(shape_e0_workload_table PROPERTIES  FAIL_REGULAR_EXPRESSION "SHAPE WARN" LABELS "shape" PASS_REGULAR_EXPRESSION "SHAPE ok" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(shape_e1_clustering_table "/root/repo/build/bench/e1_clustering_table")
set_tests_properties(shape_e1_clustering_table PROPERTIES  FAIL_REGULAR_EXPRESSION "SHAPE WARN" LABELS "shape" PASS_REGULAR_EXPRESSION "SHAPE ok" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(shape_e2_bank_sweep "/root/repo/build/bench/e2_bank_sweep")
set_tests_properties(shape_e2_bank_sweep PROPERTIES  FAIL_REGULAR_EXPRESSION "SHAPE WARN" LABELS "shape" PASS_REGULAR_EXPRESSION "SHAPE ok" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(shape_e3_cluster_ablation "/root/repo/build/bench/e3_cluster_ablation")
set_tests_properties(shape_e3_cluster_ablation PROPERTIES  FAIL_REGULAR_EXPRESSION "SHAPE WARN" LABELS "shape" PASS_REGULAR_EXPRESSION "SHAPE ok" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(shape_e4_compression_vliw "/root/repo/build/bench/e4_compression_vliw")
set_tests_properties(shape_e4_compression_vliw PROPERTIES  FAIL_REGULAR_EXPRESSION "SHAPE WARN" LABELS "shape" PASS_REGULAR_EXPRESSION "SHAPE ok" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(shape_e5_compression_risc "/root/repo/build/bench/e5_compression_risc")
set_tests_properties(shape_e5_compression_risc PROPERTIES  FAIL_REGULAR_EXPRESSION "SHAPE WARN" LABELS "shape" PASS_REGULAR_EXPRESSION "SHAPE ok" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(shape_e6_compression_sweep "/root/repo/build/bench/e6_compression_sweep")
set_tests_properties(shape_e6_compression_sweep PROPERTIES  FAIL_REGULAR_EXPRESSION "SHAPE WARN" LABELS "shape" PASS_REGULAR_EXPRESSION "SHAPE ok" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(shape_e7_encoding_table "/root/repo/build/bench/e7_encoding_table")
set_tests_properties(shape_e7_encoding_table PROPERTIES  FAIL_REGULAR_EXPRESSION "SHAPE WARN" LABELS "shape" PASS_REGULAR_EXPRESSION "SHAPE ok" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(shape_e8_encoding_ablation "/root/repo/build/bench/e8_encoding_ablation")
set_tests_properties(shape_e8_encoding_ablation PROPERTIES  FAIL_REGULAR_EXPRESSION "SHAPE WARN" LABELS "shape" PASS_REGULAR_EXPRESSION "SHAPE ok" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(shape_e9_scheduler_table "/root/repo/build/bench/e9_scheduler_table")
set_tests_properties(shape_e9_scheduler_table PROPERTIES  FAIL_REGULAR_EXPRESSION "SHAPE WARN" LABELS "shape" PASS_REGULAR_EXPRESSION "SHAPE ok" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(shape_e10_sleep_ablation "/root/repo/build/bench/e10_sleep_ablation")
set_tests_properties(shape_e10_sleep_ablation PROPERTIES  FAIL_REGULAR_EXPRESSION "SHAPE WARN" LABELS "shape" PASS_REGULAR_EXPRESSION "SHAPE ok" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(shape_e11_codec_comparison "/root/repo/build/bench/e11_codec_comparison")
set_tests_properties(shape_e11_codec_comparison PROPERTIES  FAIL_REGULAR_EXPRESSION "SHAPE WARN" LABELS "shape" PASS_REGULAR_EXPRESSION "SHAPE ok" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
