# Empty dependencies file for memopt.
# This may be replaced when dependencies are built.
