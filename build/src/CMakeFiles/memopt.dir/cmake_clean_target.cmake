file(REMOVE_RECURSE
  "libmemopt.a"
)
