
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cpp" "src/CMakeFiles/memopt.dir/cache/cache.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/cache/cache.cpp.o.d"
  "/root/repo/src/cache/hierarchy.cpp" "src/CMakeFiles/memopt.dir/cache/hierarchy.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/cache/hierarchy.cpp.o.d"
  "/root/repo/src/cluster/address_map.cpp" "src/CMakeFiles/memopt.dir/cluster/address_map.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/cluster/address_map.cpp.o.d"
  "/root/repo/src/cluster/affinity_cluster.cpp" "src/CMakeFiles/memopt.dir/cluster/affinity_cluster.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/cluster/affinity_cluster.cpp.o.d"
  "/root/repo/src/cluster/frequency.cpp" "src/CMakeFiles/memopt.dir/cluster/frequency.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/cluster/frequency.cpp.o.d"
  "/root/repo/src/cluster/remap_cost.cpp" "src/CMakeFiles/memopt.dir/cluster/remap_cost.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/cluster/remap_cost.cpp.o.d"
  "/root/repo/src/compress/bdi_codec.cpp" "src/CMakeFiles/memopt.dir/compress/bdi_codec.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/compress/bdi_codec.cpp.o.d"
  "/root/repo/src/compress/codec.cpp" "src/CMakeFiles/memopt.dir/compress/codec.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/compress/codec.cpp.o.d"
  "/root/repo/src/compress/dictionary_codec.cpp" "src/CMakeFiles/memopt.dir/compress/dictionary_codec.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/compress/dictionary_codec.cpp.o.d"
  "/root/repo/src/compress/diff_codec.cpp" "src/CMakeFiles/memopt.dir/compress/diff_codec.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/compress/diff_codec.cpp.o.d"
  "/root/repo/src/compress/memsys.cpp" "src/CMakeFiles/memopt.dir/compress/memsys.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/compress/memsys.cpp.o.d"
  "/root/repo/src/compress/platform.cpp" "src/CMakeFiles/memopt.dir/compress/platform.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/compress/platform.cpp.o.d"
  "/root/repo/src/compress/zero_run.cpp" "src/CMakeFiles/memopt.dir/compress/zero_run.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/compress/zero_run.cpp.o.d"
  "/root/repo/src/core/app_builder.cpp" "src/CMakeFiles/memopt.dir/core/app_builder.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/core/app_builder.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "src/CMakeFiles/memopt.dir/core/flow.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/core/flow.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/memopt.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/core/report.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/CMakeFiles/memopt.dir/core/study.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/core/study.cpp.o.d"
  "/root/repo/src/encoding/baselines.cpp" "src/CMakeFiles/memopt.dir/encoding/baselines.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/encoding/baselines.cpp.o.d"
  "/root/repo/src/encoding/decoder_cost.cpp" "src/CMakeFiles/memopt.dir/encoding/decoder_cost.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/encoding/decoder_cost.cpp.o.d"
  "/root/repo/src/encoding/search.cpp" "src/CMakeFiles/memopt.dir/encoding/search.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/encoding/search.cpp.o.d"
  "/root/repo/src/encoding/transform.cpp" "src/CMakeFiles/memopt.dir/encoding/transform.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/encoding/transform.cpp.o.d"
  "/root/repo/src/energy/bus_model.cpp" "src/CMakeFiles/memopt.dir/energy/bus_model.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/energy/bus_model.cpp.o.d"
  "/root/repo/src/energy/dram_model.cpp" "src/CMakeFiles/memopt.dir/energy/dram_model.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/energy/dram_model.cpp.o.d"
  "/root/repo/src/energy/report.cpp" "src/CMakeFiles/memopt.dir/energy/report.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/energy/report.cpp.o.d"
  "/root/repo/src/energy/sram_model.cpp" "src/CMakeFiles/memopt.dir/energy/sram_model.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/energy/sram_model.cpp.o.d"
  "/root/repo/src/isa/assembler.cpp" "src/CMakeFiles/memopt.dir/isa/assembler.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/isa/assembler.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/memopt.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/encode.cpp" "src/CMakeFiles/memopt.dir/isa/encode.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/isa/encode.cpp.o.d"
  "/root/repo/src/isa/isa.cpp" "src/CMakeFiles/memopt.dir/isa/isa.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/isa/isa.cpp.o.d"
  "/root/repo/src/lang/codegen.cpp" "src/CMakeFiles/memopt.dir/lang/codegen.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/lang/codegen.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/CMakeFiles/memopt.dir/lang/lexer.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/lang/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/memopt.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/lang/parser.cpp.o.d"
  "/root/repo/src/partition/bank.cpp" "src/CMakeFiles/memopt.dir/partition/bank.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/partition/bank.cpp.o.d"
  "/root/repo/src/partition/evaluate.cpp" "src/CMakeFiles/memopt.dir/partition/evaluate.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/partition/evaluate.cpp.o.d"
  "/root/repo/src/partition/sleep.cpp" "src/CMakeFiles/memopt.dir/partition/sleep.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/partition/sleep.cpp.o.d"
  "/root/repo/src/partition/solver.cpp" "src/CMakeFiles/memopt.dir/partition/solver.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/partition/solver.cpp.o.d"
  "/root/repo/src/sched/model.cpp" "src/CMakeFiles/memopt.dir/sched/model.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/sched/model.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/memopt.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/sim/cpu.cpp" "src/CMakeFiles/memopt.dir/sim/cpu.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/sim/cpu.cpp.o.d"
  "/root/repo/src/sim/kernels.cpp" "src/CMakeFiles/memopt.dir/sim/kernels.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/sim/kernels.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/CMakeFiles/memopt.dir/sim/memory.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/sim/memory.cpp.o.d"
  "/root/repo/src/support/assert.cpp" "src/CMakeFiles/memopt.dir/support/assert.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/support/assert.cpp.o.d"
  "/root/repo/src/support/csv.cpp" "src/CMakeFiles/memopt.dir/support/csv.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/support/csv.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/memopt.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/memopt.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/string_util.cpp" "src/CMakeFiles/memopt.dir/support/string_util.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/support/string_util.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/memopt.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/support/table.cpp.o.d"
  "/root/repo/src/trace/affinity.cpp" "src/CMakeFiles/memopt.dir/trace/affinity.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/trace/affinity.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/CMakeFiles/memopt.dir/trace/io.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/trace/io.cpp.o.d"
  "/root/repo/src/trace/profile.cpp" "src/CMakeFiles/memopt.dir/trace/profile.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/trace/profile.cpp.o.d"
  "/root/repo/src/trace/symbolize.cpp" "src/CMakeFiles/memopt.dir/trace/symbolize.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/trace/symbolize.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/CMakeFiles/memopt.dir/trace/synthetic.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/trace/synthetic.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/memopt.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/memopt.dir/trace/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
