# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_encoding[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_lang[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
