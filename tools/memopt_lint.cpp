// memopt_lint — determinism & invariant static analysis for the memopt tree.
//
// Usage:
//   memopt_lint [paths...] [--root DIR] [--baseline FILE] [--json FILE]
//               [--list-rules] [--help]
//
// Walks the given paths (default: src bench tests examples tools, relative
// to --root),
// tokenizes every C++ source file, and enforces the project's determinism
// and hygiene invariants as named rules (see src/tools/lint/rules.hpp for
// the catalogue). Findings print as `file:line: rule: message`; `--json`
// additionally writes a memopt.lint.v1 report for CI artifacts.
//
// Exit codes: 0 clean (no unsuppressed findings), 1 findings, 2 usage or
// environment error.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/assert.hpp"
#include "support/durable/atomic_file.hpp"
#include "support/json.hpp"
#include "tools/lint/lint.hpp"

namespace {

constexpr const char* kUsage =
    "usage: memopt_lint [paths...] [--root DIR] [--baseline FILE] [--json FILE]\n"
    "                   [--list-rules] [--help]\n"
    "\n"
    "Determinism & invariant static analysis over the memopt sources.\n"
    "Paths default to `src bench tests examples tools` relative to --root\n"
    "(default: .).\n"
    "\n"
    "  --root DIR       tree root; scan paths and diagnostics are relative to it\n"
    "  --baseline FILE  suppression baseline (file:line:rule entries); matched\n"
    "                   findings are reported but do not fail the run\n"
    "  --json FILE      write a memopt.lint.v1 JSON report\n"
    "  --list-rules     print the rule catalogue and exit\n"
    "\n"
    "Suppress a single finding in source with `// memopt-lint: <rule-id>` (or a\n"
    "rule's named allowance, e.g. `order-independent`) on the finding's line or\n"
    "the line above, with a rationale after `--`.\n"
    "\n"
    "exit codes: 0 clean, 1 findings, 2 usage/environment error\n";

int usage_error(const std::string& msg) {
    std::cerr << "memopt_lint: " << msg << "\n\n" << kUsage;
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    memopt::lint::LintOptions options;
    options.paths.clear();
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) return nullptr;
            (void)flag;
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (arg == "--list-rules") {
            for (const memopt::lint::RuleInfo& r : memopt::lint::rule_catalogue()) {
                std::cout << r.id << "  " << r.summary << "\n";
            }
            return 0;
        } else if (arg == "--root") {
            const char* v = value("--root");
            if (!v) return usage_error("--root requires a directory argument");
            options.root = v;
        } else if (arg == "--baseline") {
            const char* v = value("--baseline");
            if (!v) return usage_error("--baseline requires a file argument");
            options.baseline_path = v;
        } else if (arg == "--json") {
            const char* v = value("--json");
            if (!v) return usage_error("--json requires a file argument");
            json_path = v;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage_error("unknown option '" + arg + "'");
        } else {
            options.paths.push_back(arg);
        }
    }
    if (options.paths.empty())
        options.paths = {"src", "bench", "tests", "examples", "tools"};

    memopt::lint::LintReport report;
    try {
        report = memopt::lint::run_lint(options);
    } catch (const std::exception& e) {
        std::cerr << "memopt_lint: " << e.what() << "\n";
        return 2;
    }

    for (const memopt::lint::Finding& f : report.findings) {
        if (f.baselined) continue;
        std::cout << f.render() << "\n";
    }
    for (const std::string& s : report.stale_baseline) {
        std::cerr << "memopt_lint: warning: stale baseline entry (matches nothing): " << s
                  << "\n";
    }

    if (!json_path.empty()) {
        // Dogfood rule R1: the report publishes crash-safely through the
        // durable layer, never as an in-place write of the final name.
        std::ostringstream doc;
        memopt::JsonWriter w(doc);
        memopt::lint::write_json(w, options, report);
        doc << "\n";
        try {
            memopt::atomic_write(json_path, doc.str());
        } catch (const std::exception& e) {
            std::cerr << "memopt_lint: cannot write " << json_path << ": " << e.what() << "\n";
            return 2;
        }
    }

    const std::size_t active = report.active_count();
    std::cerr << "memopt_lint: " << report.files_scanned << " files, " << active
              << " finding(s), " << report.baselined_count() << " baselined\n";
    return active == 0 ? 0 : 1;
}
