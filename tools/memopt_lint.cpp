// memopt_lint — determinism & invariant static analysis for the memopt tree.
//
// Usage:
//   memopt_lint [paths...] [--root DIR] [--baseline FILE] [--json FILE]
//               [--sarif FILE] [--cache FILE] [--jobs N]
//               [--layering FILE] [--schemas DIR] [--list-rules] [--help]
//
// Walks the given paths (default: src bench tests examples tools, relative
// to --root), indexes every C++ source file — in parallel, incrementally
// when --cache names an index cache — and enforces the project's
// determinism, layering, include-hygiene, and schema invariants as named
// rules (see src/tools/lint/rules.hpp for the catalogue). Findings print
// as `file:line: rule: message`; `--json` additionally writes a
// memopt.lint.v1 report and `--sarif` a SARIF 2.1.0 document for GitHub
// code scanning.
//
// Exit codes: 0 clean (no unsuppressed findings), 1 findings, 2 usage or
// environment error.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/durable/atomic_file.hpp"
#include "support/json.hpp"
#include "tools/lint/lint.hpp"

namespace {

constexpr const char* kUsage =
    "usage: memopt_lint [paths...] [--root DIR] [--baseline FILE] [--json FILE]\n"
    "                   [--sarif FILE] [--cache FILE] [--jobs N]\n"
    "                   [--layering FILE] [--schemas DIR] [--list-rules] [--help]\n"
    "\n"
    "Determinism & invariant static analysis over the memopt sources.\n"
    "Paths default to `src bench tests examples tools` relative to --root\n"
    "(default: .).\n"
    "\n"
    "  --root DIR       tree root; scan paths and diagnostics are relative to it\n"
    "  --baseline FILE  suppression baseline (file:line:rule entries); matched\n"
    "                   findings are reported but do not fail the run\n"
    "  --json FILE      write a memopt.lint.v1 JSON report\n"
    "  --sarif FILE     write a SARIF 2.1.0 report (GitHub code scanning)\n"
    "  --cache FILE     incremental index cache: unchanged files (by content\n"
    "                   hash) skip re-tokenization on warm runs; findings are\n"
    "                   identical either way\n"
    "  --jobs N         scan parallelism (0 = hardware default); findings are\n"
    "                   bit-identical at any value\n"
    "  --layering FILE  module-layering config for rule L1 (default:\n"
    "                   tools/layering.toml under --root when present)\n"
    "  --schemas DIR    schema goldens for rule S1 (default: docs/schemas\n"
    "                   under --root when present)\n"
    "  --list-rules     print the rule catalogue and exit\n"
    "\n"
    "Suppress a single finding in source with `// memopt-lint: <rule-id>` (or a\n"
    "rule's named allowance, e.g. `order-independent`, `guarded`, `keep-include`)\n"
    "on the finding's line or the line above, with a rationale after `--`.\n"
    "\n"
    "exit codes: 0 clean, 1 findings, 2 usage/environment error\n";

int usage_error(const std::string& msg) {
    std::cerr << "memopt_lint: " << msg << "\n\n" << kUsage;
    return 2;
}

/// Render a report document and publish it through the durable layer
/// (dogfooding rule R1: a crash mid-write must not leave a truncated
/// artifact under the final name).
int write_report(const std::string& path, const memopt::lint::LintOptions& options,
                 const memopt::lint::LintReport& report,
                 void (*render)(memopt::JsonWriter&, const memopt::lint::LintOptions&,
                                const memopt::lint::LintReport&)) {
    std::ostringstream doc;
    memopt::JsonWriter w(doc);
    render(w, options, report);
    doc << "\n";
    try {
        memopt::atomic_write(path, doc.str());
    } catch (const std::exception& e) {
        std::cerr << "memopt_lint: cannot write " << path << ": " << e.what() << "\n";
        return 2;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    memopt::lint::LintOptions options;
    options.paths.clear();
    std::string json_path;
    std::string sarif_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) return nullptr;
            (void)flag;
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (arg == "--list-rules") {
            for (const memopt::lint::RuleInfo& r : memopt::lint::rule_catalogue()) {
                std::cout << r.id << "  " << r.summary << "\n";
            }
            return 0;
        } else if (arg == "--root") {
            const char* v = value("--root");
            if (!v) return usage_error("--root requires a directory argument");
            options.root = v;
        } else if (arg == "--baseline") {
            const char* v = value("--baseline");
            if (!v) return usage_error("--baseline requires a file argument");
            options.baseline_path = v;
        } else if (arg == "--json") {
            const char* v = value("--json");
            if (!v) return usage_error("--json requires a file argument");
            json_path = v;
        } else if (arg == "--sarif") {
            const char* v = value("--sarif");
            if (!v) return usage_error("--sarif requires a file argument");
            sarif_path = v;
        } else if (arg == "--cache") {
            const char* v = value("--cache");
            if (!v) return usage_error("--cache requires a file argument");
            options.cache_path = v;
        } else if (arg == "--jobs") {
            const char* v = value("--jobs");
            if (!v) return usage_error("--jobs requires a count argument");
            try {
                options.jobs = static_cast<std::size_t>(std::stoul(v));
            } catch (const std::exception&) {
                return usage_error("--jobs requires a non-negative integer");
            }
        } else if (arg == "--layering") {
            const char* v = value("--layering");
            if (!v) return usage_error("--layering requires a file argument");
            options.layering_path = v;
        } else if (arg == "--schemas") {
            const char* v = value("--schemas");
            if (!v) return usage_error("--schemas requires a directory argument");
            options.schemas_dir = v;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage_error("unknown option '" + arg + "'");
        } else {
            options.paths.push_back(arg);
        }
    }
    if (options.paths.empty())
        options.paths = {"src", "bench", "tests", "examples", "tools"};

    memopt::lint::LintReport report;
    try {
        report = memopt::lint::run_lint(options);
    } catch (const std::exception& e) {
        std::cerr << "memopt_lint: " << e.what() << "\n";
        return 2;
    }

    for (const memopt::lint::Finding& f : report.findings) {
        if (f.baselined) continue;
        std::cout << f.render() << "\n";
    }
    for (const std::string& s : report.stale_baseline) {
        std::cerr << "memopt_lint: warning: stale baseline entry (matches nothing): " << s
                  << "\n";
    }

    if (!json_path.empty()) {
        const int rc = write_report(json_path, options, report, memopt::lint::write_json);
        if (rc != 0) return rc;
    }
    if (!sarif_path.empty()) {
        const int rc = write_report(sarif_path, options, report, memopt::lint::write_sarif);
        if (rc != 0) return rc;
    }

    const std::size_t active = report.active_count();
    std::cerr << "memopt_lint: " << report.files_scanned << " files ("
              << report.files_from_cache << " from cache), " << active << " finding(s), "
              << report.baselined_count() << " baselined\n";
    return active == 0 ? 0 : 1;
}
