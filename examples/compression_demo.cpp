// compression_demo — write-back data compression on a kernel of your choice.
//
// Runs a kernel (default: listchase, or argv[1]) through the compressed
// memory system on both platform models, with the differential and the
// zero-run codec, and prints the traffic and energy effects. Also shows the
// codec working on a single cache line so the bitstream layout is tangible.
#include <cstdio>
#include <iostream>
#include <string>

#include "compress/diff_codec.hpp"
#include "compress/platform.hpp"
#include "compress/zero_run.hpp"
#include "sim/kernels.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    using namespace memopt;
    const std::string name = argc > 1 ? argv[1] : "listchase";

    // --- codec close-up -----------------------------------------------------
    const DiffCodec diff;
    std::vector<std::uint32_t> pointers;
    for (std::uint32_t i = 0; i < 8; ++i) pointers.push_back(0x20010000 + 16 * i);
    const auto line = words_to_line(pointers);
    const auto coded = diff.encode(line);
    std::printf("a 32-byte line of pointers compresses to %zu bits (%.0f%% of raw);\n",
                coded.bit_count(), 100.0 * coded.bit_count() / (line.size() * 8));
    std::printf("decoding restores it losslessly: %s\n\n",
                diff.decode(coded.bytes(), line.size()) == line ? "yes" : "NO (bug!)");

    // --- full system simulation ----------------------------------------------
    const Kernel& kernel = kernel_by_name(name);
    const auto program = assemble(kernel.source);
    const RunResult run = Cpu(CpuConfig{}).run(program);
    std::printf("kernel %s: %zu data accesses\n\n", name.c_str(), run.data_trace.size());

    const ZeroRunCodec zero_run;
    for (const PlatformModel& platform : {vliw_platform(), risc_platform()}) {
        std::printf("platform %s: %s\n", platform.name.c_str(), platform.description.c_str());
        TablePrinter table({"configuration", "traffic [B]", "traffic ratio", "cache [nJ]",
                            "main memory [nJ]", "codec [nJ]", "total [nJ]"});
        struct Config {
            const char* label;
            const LineCodec* codec;
        };
        for (const Config& cfg : {Config{"uncompressed", nullptr}, Config{"diff codec", &diff},
                                  Config{"zero-run codec", &zero_run}}) {
            const auto report = CompressedMemorySim(platform.config, cfg.codec)
                                    .run(run.data_trace, program.data, program.data_base);
            table.add_row({cfg.label,
                           format("%llu", (unsigned long long)report.actual_traffic_bytes),
                           format_fixed(report.traffic_ratio(), 3),
                           format_fixed(report.energy.component("cache") / 1e3, 1),
                           format_fixed(report.energy.component("main_memory") / 1e3, 1),
                           format_fixed(report.energy.component("codec") / 1e3, 1),
                           format_fixed(report.energy.total() / 1e3, 1)});
        }
        table.print(std::cout);
        std::printf("\n");
    }
    return 0;
}
