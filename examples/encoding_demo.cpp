// encoding_demo — application-specific instruction-bus transformations.
//
// Profiles the fetch stream of a kernel (default: histogram, or argv[1]),
// searches for the best gate-level transform, prints the synthesized gate
// list (the "reprogrammable hardware configuration" of 1B-3), and verifies
// that the decoder recovers every instruction word.
#include <cstdio>
#include <string>

#include "encoding/baselines.hpp"
#include "encoding/search.hpp"
#include "energy/bus_model.hpp"
#include "sim/kernels.hpp"
#include "support/string_util.hpp"

int main(int argc, char** argv) {
    using namespace memopt;
    const std::string name = argc > 1 ? argv[1] : "histogram";

    CpuConfig config;
    config.record_data_trace = false;
    config.record_fetch_stream = true;
    const RunResult run = run_kernel(kernel_by_name(name), config);
    const auto& stream = run.fetch_stream;
    std::printf("kernel %s: %zu fetched instruction words\n\n", name.c_str(), stream.size());

    const std::uint64_t raw = count_transitions(stream);
    const std::uint64_t bi = bus_invert_transitions(stream);
    const std::uint64_t gray = gray_code_transitions(stream);
    const TransformSearchResult result = search_transform(stream, {.max_gates = 16});

    std::printf("bus transitions:\n");
    std::printf("  unencoded       : %llu\n", (unsigned long long)raw);
    std::printf("  bus-invert      : %llu (%+.1f%%)\n", (unsigned long long)bi,
                100.0 * (double(bi) / double(raw) - 1.0));
    std::printf("  gray re-code    : %llu (%+.1f%%)\n", (unsigned long long)gray,
                100.0 * (double(gray) / double(raw) - 1.0));
    std::printf("  app transform   : %llu (%+.1f%%)\n\n",
                (unsigned long long)result.encoded_transitions,
                -100.0 * result.reduction());

    std::printf("synthesized transform (%zu XOR gates, applied in order):\n",
                result.transform.gate_count());
    for (const XorGate& gate : result.transform.gates())
        std::printf("  bit[%2u] ^= bit[%2u]\n", gate.dst, gate.src);

    // Decoder check over the whole stream.
    bool ok = true;
    for (std::uint32_t w : stream) ok = ok && result.transform.invert(result.transform.apply(w)) == w;
    std::printf("\ndecoder recovers all %zu words: %s\n", stream.size(), ok ? "yes" : "NO (bug!)");

    const BusEnergyModel bus;
    std::printf("bus energy saved: %s per run\n",
                format_energy_pj(bus.transition_energy(raw - result.encoded_transitions)).c_str());
    return 0;
}
