# ctest driver for the streaming trace pipeline's CLI contract.
#
# The same partition study is run four ways — materialized from an .mtsc
# container written by `trace`, and streamed with --trace-stream at
# --jobs 1 and --jobs 8 (plus a non-default --chunk-size) — and the
# "results" sections of all four memopt.report.v1 documents must be
# bit-identical: streaming must change memory behaviour, never results.
#
# Invoked as:
#   cmake -DCLI=<memopt_cli> -DPYTHON=<python3> -DWORK_DIR=<scratch>
#         -P check_stream_json.cmake
foreach(var CLI PYTHON WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_stream_json.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "check_stream_json.cmake: command failed (${rc}): ${ARGN}")
  endif()
endfunction()

set(SPEC "synthetic:hotspot,span=65536,n=300000,seed=17,write=0.3,hotspots=4,hotspot-bytes=2048,hot-frac=0.8")

# Materialize the spec into a compressed container, then round-trip it.
run_checked(${CLI} trace ${SPEC} ${WORK_DIR}/trace.mtsc --compress 1)
run_checked(${CLI} partition ${WORK_DIR}/trace.mtsc --cluster affinity
            --json ${WORK_DIR}/materialized.json)
run_checked(${CLI} partition --trace-stream ${SPEC} --cluster affinity --jobs 1
            --json ${WORK_DIR}/stream_j1.json)
run_checked(${CLI} partition --trace-stream ${SPEC} --cluster affinity --jobs 8
            --json ${WORK_DIR}/stream_j8.json)
run_checked(${CLI} partition --trace-stream ${WORK_DIR}/trace.mtsc --cluster affinity
            --chunk-size 4096 --json ${WORK_DIR}/stream_mtsc.json)

file(WRITE ${WORK_DIR}/compare_stream.py [=[
import json
import sys

docs = []
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    for key in ("schema", "command", "results", "metrics"):
        if key not in doc:
            sys.exit(f"{path}: missing top-level key: {key}")
    if doc["schema"] != "memopt.report.v1":
        sys.exit(f"{path}: unexpected schema: {doc['schema']}")
    docs.append(doc)
base = docs[0]["results"]
for path, doc in zip(sys.argv[2:], docs[1:]):
    if doc["results"] != base:
        sys.exit(f"{path}: results differ from the materialized run")
]=])
run_checked(${PYTHON} ${WORK_DIR}/compare_stream.py
            ${WORK_DIR}/materialized.json ${WORK_DIR}/stream_j1.json
            ${WORK_DIR}/stream_j8.json ${WORK_DIR}/stream_mtsc.json)
