// quickstart — the five-minute tour of the memopt public API.
//
// Generates a synthetic embedded access profile with scattered hotspots,
// then walks the 1B-1 pipeline by hand: profile -> partition -> cluster ->
// partition again, printing the energy at every step.
#include <iostream>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "trace/synthetic.hpp"

int main() {
    using namespace memopt;

    // 1. A workload. Real users feed a MemTrace from their own simulator
    //    (or use the bundled AR32 kernels, see energy_report.cpp); here a
    //    synthetic trace with 8 scattered hotspots stands in.
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = 128 * 1024, .num_accesses = 200000, .write_fraction = 0.3,
                 .seed = 42},
        .num_hotspots = 8,
        .hotspot_bytes = 1024,
        .hot_fraction = 0.9,
    });

    // 2. Profile it at 256-byte block granularity.
    const BlockProfile profile = BlockProfile::from_trace(trace, 256);
    std::cout << "profile: " << profile.num_blocks() << " blocks, "
              << profile.total_accesses() << " accesses, spatial locality "
              << profile.spatial_locality() << "\n\n";

    // 3. Run the flow: monolithic vs partitioned vs clustered+partitioned.
    FlowParams params;
    params.block_size = 256;
    params.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(params);
    const FlowComparison cmp = flow.compare(trace, ClusterMethod::Frequency);

    energy_comparison_table({
                                {"monolithic", cmp.monolithic},
                                {"partitioned", cmp.partitioned.energy},
                                {"clustered + partitioned", cmp.clustered.energy},
                            })
        .print(std::cout);

    // 4. Inspect the winning architecture.
    std::cout << "\nclustered architecture (" << cmp.clustered.solution.arch.num_banks()
              << " banks):\n";
    for (const Bank& bank : cmp.clustered.solution.arch.banks()) {
        std::cout << "  bank @block " << bank.first_block << ", " << bank.num_blocks
                  << " blocks, capacity " << bank.size_bytes << " B\n";
    }
    cmp.clustered.energy.print(std::cout, "\nclustered energy breakdown:");

    std::cout << "\npartitioning saved " << cmp.partitioning_savings_pct()
              << "% vs monolithic; clustering saved another " << cmp.clustering_savings_pct()
              << "% vs partitioning alone.\n";
    return 0;
}
