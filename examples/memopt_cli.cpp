// memopt_cli — command-line driver for the toolkit.
//
// Lets a user exercise every pipeline from the shell without writing C++:
//
//   memopt_cli kernels
//   memopt_cli run <kernel>
//   memopt_cli disasm <kernel>
//   memopt_cli cc <file.arc> [--emit asm|run]
//   memopt_cli trace <source> <out-file>          (.mtsc = stream container,
//                        .mtrc = binary, else text; `source` is a kernel, a
//                        trace file, or "synthetic:<kind>[,k=v]...")
//   memopt_cli partition <kernel|trace-file> [--banks N] [--block BYTES]
//                        [--cluster none|frequency|affinity]
//                        [--trace-stream SPEC] [--chunk-size N]
//   memopt_cli compress <kernel> [--platform vliw|risc]
//                        [--codec diff|zero-run|bdi|dictionary]
//   memopt_cli encode <kernel> [--gates N]
//   memopt_cli schedule [--seed N]
//   memopt_cli study <kernel>|all
//   memopt_cli fault <kernel> [--protection none|parity|secded]
//                    [--codec none|diff|zero-run|bdi|dictionary]
//                    [--rate R] [--trials N] [--seed S] [--drowsy F]
//                    [--checkpoint PATH [--resume] [--checkpoint-every N]]
//
// Exit codes: 0 = success, 1 = usage error (bad command line),
// 2 = data or environment error (memopt::Error — missing kernel, unreadable
// file, malformed trace, ...), 3 = interrupted (deadline or signal; partial
// results were checkpointed / reported, rerun with --resume to continue).
//
// Every command accepts a global `--jobs N` option bounding the worker
// threads of the parallel runtime (equivalent to MEMOPT_JOBS=N; jobs=1 is
// fully serial). Results are bit-identical at any job count.
//
// `partition --trace-stream SPEC` replays a chunked trace stream (a
// synthetic: spec, an .mtsc/.mtrc file, or a kernel) without materializing
// it — out-of-core traces run in O(chunk) memory and the report is
// bit-identical to the materialized run at any --jobs.
//
// `run`, `partition`, `compress`, `encode` and `study` also accept
// `--json FILE`: the command's results are exported as one
// "memopt.report.v1" document (see DESIGN.md) alongside the usual text
// output. The "results" section is deterministic; wall-clock timers live
// in the separate "metrics" section (set MEMOPT_JSON_METRICS=0 to omit it
// when byte-diffing documents). The document is published crash-safely:
// bytes stage into FILE.tmp and rename onto FILE only once complete.
//
// Long runs are resilient: `fault --checkpoint PATH` (and `study all
// --checkpoint PATH`) snapshots completed work into a memopt.ckpt.v1 file,
// `--resume` picks it back up bit-identically, and the global
// `--deadline-sec S` arms a cooperative watchdog that (together with
// SIGINT/SIGTERM) stops the run at the next unit boundary, checkpoints,
// reports `"partial": true`, and exits with code 3 (DESIGN.md §9).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cache/mcache.hpp"
#include "compress/bdi_codec.hpp"
#include "compress/dictionary_codec.hpp"
#include "compress/diff_codec.hpp"
#include "compress/platform.hpp"
#include "compress/zero_run.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "core/workload.hpp"
#include "isa/disasm.hpp"
#include "lang/codegen.hpp"
#include "encoding/decoder_cost.hpp"
#include "encoding/search.hpp"
#include "energy/bus_model.hpp"
#include "fault/campaign.hpp"
#include "partition/sleep.hpp"
#include "sched/scheduler.hpp"
#include "sim/kernels.hpp"
#include "support/assert.hpp"
#include "support/durable/atomic_file.hpp"
#include "support/durable/cancel.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"
#include "trace/io.hpp"
#include "trace/source.hpp"
#include "trace/stream_file.hpp"
#include "trace/symbolize.hpp"

namespace {

using namespace memopt;

/// A bad command line (unknown command, malformed option, missing
/// argument). Exits with code 1, as opposed to data/environment errors
/// (memopt::Error), which exit with code 2.
struct UsageError : Error {
    using Error::Error;
};

void usage_require(bool condition, const std::string& message) {
    if (!condition) throw UsageError(message);
}

/// Why a checkpointed command stopped early (exit code 3); main() records
/// it in the JSON envelope as "reason" next to "partial": true.
std::string g_partial_reason;

/// MEMOPT_JSON_METRICS=0 omits the wall-clock "metrics" section from --json
/// documents so resumed and uninterrupted runs can be byte-diffed.
bool json_metrics_enabled() {
    const char* env = std::getenv("MEMOPT_JSON_METRICS");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

/// Minimal partial document for runs cancelled outside a checkpointed
/// command (the staged envelope was discarded mid-value): same schema,
/// "results": null, "partial": true. Written crash-safely like any
/// final artifact.
void write_partial_json(const std::string& path, const std::string& command,
                        const std::string& target, const std::string& reason) {
    std::ostringstream doc;
    JsonWriter w(doc);
    w.begin_object();
    w.member("schema", command == "fault" ? "memopt.fault.v1" : "memopt.report.v1");
    w.member("command", command);
    w.member("target", target);
    w.key("results").null();
    w.member("partial", true);
    w.member("reason", reason);
    w.end_object();
    atomic_write(path, doc.str() + "\n");
}

/// Trivial "--key value" option parser; positional args stay in order.
struct Args {
    std::vector<std::string> positional;
    std::map<std::string, std::string> options;

    static Args parse(int argc, char** argv, int first) {
        Args args;
        for (int i = first; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                // Valueless flags; everything else is "--key value".
                if (arg == "--resume") {
                    args.options["resume"] = "1";
                    continue;
                }
                usage_require(i + 1 < argc, "option " + arg + " needs a value");
                args.options[arg.substr(2)] = argv[++i];
            } else {
                args.positional.push_back(arg);
            }
        }
        return args;
    }

    std::string get(const std::string& key, const std::string& fallback) const {
        const auto it = options.find(key);
        return it == options.end() ? fallback : it->second;
    }

    std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
        const auto it = options.find(key);
        if (it == options.end()) return fallback;
        const auto v = parse_int(it->second);
        usage_require(v.has_value(), "option --" + key + " expects an integer");
        return *v;
    }

    double get_double(const std::string& key, double fallback) const {
        const auto it = options.find(key);
        if (it == options.end()) return fallback;
        char* end = nullptr;
        const double v = std::strtod(it->second.c_str(), &end);
        usage_require(end != it->second.c_str() && *end == '\0',
                      "option --" + key + " expects a number");
        return v;
    }
};

int usage() {
    std::puts("usage: memopt_cli <command> [args]\n"
              "  kernels                                list bundled kernels\n"
              "  run <kernel>                           simulate and print stats\n"
              "  run <kernel|file|synthetic:...> --cores N\n"
              "            [--l2-banks N] [--chunk-size N]\n"
              "                                         N-core coherent cache replay\n"
              "                                         (private L1s + banked L2 + MSI)\n"
              "  disasm <kernel>                        annotated program listing\n"
              "  cc <file.arc> [--emit asm|run]         compile arclang and emit/run\n"
              "  trace <source> <file>                  dump a data trace; source is a\n"
              "        [--trace-format mtsc|bin|text]   kernel, a trace file, or\n"
              "        [--chunk-size N] [--compress 1]  synthetic:<kind>[,k=v]...\n"
              "  partition <kernel|file> [--banks N] [--block BYTES]\n"
              "            [--cluster none|frequency|affinity]\n"
              "            [--trace-stream SPEC] [--chunk-size N]\n"
              "            [--bank-pool SPEC]                hybrid pool, e.g.\n"
              "                                              sram=2,sttmram=6 (techs: sram,\n"
              "                                              edram, sttmram, drowsy)\n"
              "            [--gate-idle N]                   idle cycles before a bank is\n"
              "                                              power-gated (0 = never gate)\n"
              "            [--gate-leak-scale X]             scale gated leakage (ablation)\n"
              "  compress <kernel> [--platform vliw|risc]\n"
              "            [--codec diff|zero-run|bdi|dictionary]\n"
              "  encode <kernel> [--gates N]\n"
              "  schedule [--seed N]\n"
              "  study <kernel>                         all optimizations, one report\n"
              "  study all [--checkpoint PATH [--resume]]\n"
              "                                         whole-suite study, in parallel\n"
              "  fault <kernel> [--protection none|parity|secded]\n"
              "            [--codec none|diff|zero-run|bdi|dictionary] [--rate R]\n"
              "            [--trials N] [--seed S] [--drowsy F] [--line BYTES]\n"
              "            [--checkpoint PATH [--resume] [--checkpoint-every N]]\n"
              "global options:\n"
              "  --jobs N                               worker threads (0 = use default:\n"
              "                                         MEMOPT_JOBS or hardware; 1 = fully\n"
              "                                         serial)\n"
              "  --json FILE                            also write a memopt.report.v1 JSON\n"
              "                                         document (run/partition/compress/\n"
              "                                         encode/study/fault; fault exports\n"
              "                                         memopt.fault.v1); crash-safe\n"
              "                                         staged write, MEMOPT_JSON_METRICS=0\n"
              "                                         omits the metrics section\n"
              "  --deadline-sec S                       cooperative watchdog: stop at the\n"
              "                                         next unit boundary after S seconds\n"
              "                                         (0 stops at the first boundary),\n"
              "                                         checkpoint, report partial, exit 3\n"
              "  --checkpoint PATH / --resume           durable progress for fault and\n"
              "  --checkpoint-every N                   study all (memopt.ckpt.v1 file);\n"
              "                                         resumed runs are bit-identical to\n"
              "                                         uninterrupted ones at any --jobs\n"
              "exit codes:\n"
              "  0 success   1 usage error   2 data or environment error\n"
              "  3 interrupted by --deadline-sec or SIGINT/SIGTERM (partial results\n"
              "    checkpointed; rerun with --resume)");
    return 1;
}

MemTrace trace_of(const std::string& source) {
    // A kernel name, or a trace file path for anything containing a dot/slash.
    if (source.size() >= 5 && source.compare(source.size() - 5, 5, ".mtsc") == 0)
        return read_trace_stream(source);
    if (source.find('.') != std::string::npos || source.find('/') != std::string::npos)
        return load_trace(source);
    return WorkloadRepository::instance().run(source)->result.data_trace;
}

int cmd_kernels() {
    for (const Kernel& k : kernel_suite()) std::printf("%-10s %s\n", k.name.c_str(),
                                                       k.description.c_str());
    return 0;
}

// `run ... --cores N`: replay one trace stream per core through the
// coherent multi-core cache system and report per-core stats, coherence
// traffic, and the energy breakdown.
int cmd_run_cores(const Args& args, JsonWriter* jw) {
    const std::string spec = args.positional[0];
    const std::int64_t cores = args.get_int("cores", 4);
    usage_require(cores >= 1 && cores <= 64, "run: --cores expects a count in [1, 64]");
    const std::int64_t banks = args.get_int("l2-banks", 4);
    usage_require(banks >= 1, "run: --l2-banks expects a positive count");
    const std::int64_t chunk = args.get_int("chunk-size", 0);
    usage_require(chunk >= 0, "run: --chunk-size expects a non-negative count");

    MultiCoreConfig config;
    config.cores = static_cast<unsigned>(cores);
    config.l2_banks = static_cast<unsigned>(banks);
    MultiCoreCacheSystem system(config);
    const std::vector<std::unique_ptr<TraceSource>> sources =
        WorkloadRepository::instance().open_core_trace_sources(
            spec, config.cores, static_cast<std::size_t>(chunk));
    system.replay(sources);
    system.flush();

    std::printf("cores        : %u  (L2 banks: %u)\n", config.cores, config.l2_banks);
    for (unsigned c = 0; c < system.cores(); ++c) {
        const CacheStats& s = system.l1(c).stats();
        std::printf("  core %-2u L1 : %8llu R / %8llu W, miss rate %5.2f%%\n", c,
                    (unsigned long long)(s.read_hits + s.read_misses),
                    (unsigned long long)(s.write_hits + s.write_misses),
                    100.0 * s.miss_rate());
    }
    const CacheStats l2 = system.l2_totals();
    std::printf("L2 (all banks): %llu accesses, miss rate %5.2f%%\n",
                (unsigned long long)l2.accesses(), 100.0 * l2.miss_rate());
    const CoherenceStats& cs = system.directory().stats();
    std::printf("coherence    : %llu invalidations, %llu downgrades, %llu upgrades,\n"
                "               %llu owner flushes (%llu messages, %llu dirty transfers)\n",
                (unsigned long long)cs.invalidations, (unsigned long long)cs.downgrades,
                (unsigned long long)cs.upgrades, (unsigned long long)cs.owner_flushes,
                (unsigned long long)cs.messages(), (unsigned long long)cs.dirty_transfers());
    std::printf("memory       : %llu line fetches, %llu line writes\n",
                (unsigned long long)system.traffic().line_fetches,
                (unsigned long long)system.traffic().line_writes);
    system.energy().print(std::cout, "energy:");
    if (jw != nullptr) to_json(*jw, system);
    return 0;
}

int cmd_run(const Args& args, JsonWriter* jw) {
    usage_require(!args.positional.empty(), "run: missing kernel name");
    if (args.options.count("cores") != 0) return cmd_run_cores(args, jw);
    const KernelRunPtr artifact =
        WorkloadRepository::instance().run(args.positional[0], /*fetch=*/true);
    const AssembledProgram& program = artifact->program;
    const RunResult& r = artifact->result;
    std::printf("instructions : %llu\n", (unsigned long long)r.instructions);
    std::printf("cycles       : %llu\n", (unsigned long long)r.cycles);
    std::printf("data accesses: %zu (%llu R / %llu W)\n", r.data_trace.size(),
                (unsigned long long)r.data_trace.read_count(),
                (unsigned long long)r.data_trace.write_count());
    std::printf("outputs      :");
    for (std::uint32_t v : r.output) std::printf(" 0x%08x", v);
    std::printf("\nhot symbols  :\n");
    const auto traffic = symbolize_trace(program, r.data_trace);
    for (std::size_t i = 0; i < traffic.size() && i < 6; ++i) {
        const SymbolTraffic& t = traffic[i];
        std::printf("  %-12s %6llu R %6llu W  (%4.1f%% of accesses)\n", t.name.c_str(),
                    (unsigned long long)t.reads, (unsigned long long)t.writes,
                    100.0 * double(t.total()) / double(r.data_trace.size()));
    }
    if (jw != nullptr) {
        jw->begin_object();
        jw->member("kernel", artifact->name);
        jw->member("instructions", r.instructions);
        jw->member("cycles", r.cycles);
        jw->member("data_accesses", static_cast<std::uint64_t>(r.data_trace.size()));
        jw->member("reads", r.data_trace.read_count());
        jw->member("writes", r.data_trace.write_count());
        jw->key("outputs").begin_array();
        for (std::uint32_t v : r.output) jw->value(v);
        jw->end_array();
        jw->key("symbols").begin_array();
        for (const SymbolTraffic& t : traffic) {
            jw->begin_object();
            jw->member("name", t.name);
            jw->member("reads", t.reads);
            jw->member("writes", t.writes);
            jw->end_object();
        }
        jw->end_array();
        jw->end_object();
    }
    return 0;
}

int cmd_disasm(const Args& args) {
    usage_require(!args.positional.empty(), "disasm: missing kernel name");
    const AssembledProgram program = assemble(kernel_by_name(args.positional[0]).source);
    std::fputs(disassemble_program(program).c_str(), stdout);
    return 0;
}

int cmd_cc(const Args& args) {
    usage_require(!args.positional.empty(), "cc: missing source file");
    std::ifstream in(args.positional[0]);
    require(in.is_open(), "cc: cannot open '" + args.positional[0] + "'");
    std::string source((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
    const std::string mode = args.get("emit", "run");
    if (mode == "asm") {
        std::fputs(lang::compile_to_asm(source).c_str(), stdout);
        return 0;
    }
    usage_require(mode == "run", "cc: --emit must be 'asm' or 'run'");
    const AssembledProgram program = lang::compile(source);
    const RunResult r = Cpu(CpuConfig{}).run(program);
    std::printf("instructions : %llu\n", (unsigned long long)r.instructions);
    std::printf("outputs      :");
    for (std::uint32_t v : r.output) std::printf(" 0x%08x", v);
    std::printf("\n");
    return 0;
}

int cmd_trace(const Args& args) {
    usage_require(args.positional.size() >= 2, "trace: need <source> <file>");
    const std::string& out = args.positional[1];
    const std::int64_t chunk = args.get_int("chunk-size", 0);
    usage_require(chunk >= 0, "trace: --chunk-size expects a non-negative count");
    // The source is never materialized: a synthetic:... spec of 10^8
    // accesses streams straight into the output file in O(chunk) memory.
    const std::unique_ptr<TraceSource> source =
        WorkloadRepository::instance().open_trace_source(args.positional[0],
                                                         static_cast<std::size_t>(chunk));

    const auto ends_with = [&](const char* suffix) {
        const std::string s(suffix);
        return out.size() >= s.size() && out.compare(out.size() - s.size(), s.size(), s) == 0;
    };
    std::string fmt = args.get("trace-format", "");
    if (fmt.empty()) fmt = ends_with(".mtsc") ? "mtsc" : ends_with(".mtrc") ? "bin" : "text";

    if (fmt == "mtsc" || fmt == "mmap") {
        StreamWriteOptions opts;
        if (chunk > 0) opts.chunk_accesses = static_cast<std::size_t>(chunk);
        opts.compress = args.get_int("compress", 0) != 0;
        const TraceSummary sum = write_trace_stream(out, *source, opts);
        std::printf("wrote %llu accesses to %s (mtsc%s)\n",
                    (unsigned long long)sum.accesses, out.c_str(),
                    opts.compress ? ", compressed" : "");
        return 0;
    }
    usage_require(fmt == "bin" || fmt == "mtrc" || fmt == "text",
                  "trace: --trace-format must be mtsc, bin or text");
    const bool binary = fmt != "text";
    atomic_write(
        out,
        [&](std::ostream& os) {
            source->reset();  // commit retries re-run the body from the start
            if (binary) write_trace_binary(os, *source);
            else write_trace_text(os, *source);
            require(os.good(), "trace: write failed for '" + out + "'");
        },
        binary ? std::ios::binary : std::ios_base::openmode{});
    std::printf("wrote %llu accesses to %s (%s)\n", (unsigned long long)source->size(),
                out.c_str(), binary ? "binary" : "text");
    return 0;
}

int cmd_partition(const Args& args, JsonWriter* jw) {
    const std::string stream_spec = args.get("trace-stream", "");
    usage_require(!args.positional.empty() || !stream_spec.empty(),
                  "partition: missing kernel or trace file (or --trace-stream SPEC)");

    FlowParams fp;
    fp.block_size = static_cast<std::uint64_t>(args.get_int("block", 256));
    fp.constraints.max_banks = static_cast<std::size_t>(args.get_int("banks", 4));
    const MemoryOptimizationFlow flow(fp);

    const std::string method_name = args.get("cluster", "frequency");
    ClusterMethod method = ClusterMethod::Frequency;
    if (method_name == "none") method = ClusterMethod::None;
    else if (method_name == "frequency") method = ClusterMethod::Frequency;
    else if (method_name == "affinity") method = ClusterMethod::Affinity;
    else throw UsageError("partition: unknown clustering method '" + method_name + "'");

    const std::string pool_spec = args.get("bank-pool", "");
    if (!pool_spec.empty()) {
        // Hybrid pool path: keeps the legacy (no --bank-pool) report
        // byte-identical by never touching the branches below.
        BankPool pool;
        try {
            pool = BankPool::parse(pool_spec);
        } catch (const Error& e) {
            throw UsageError(std::string("partition: ") + e.what());
        }
        HybridGatingParams gating;
        const std::int64_t idle = args.get_int("gate-idle", 200);
        usage_require(idle >= 0, "partition: --gate-idle expects a non-negative count");
        gating.enabled = idle > 0;
        gating.idle_cycles = static_cast<std::uint64_t>(idle);
        gating.gate_leak_scale = args.get_double("gate-leak-scale", 1.0);
        usage_require(gating.gate_leak_scale >= 0.0,
                      "partition: --gate-leak-scale expects a non-negative factor");

        HybridFlowResult result;
        if (!stream_spec.empty()) {
            const std::int64_t chunk = args.get_int("chunk-size", 0);
            usage_require(chunk >= 0, "partition: --chunk-size expects a non-negative count");
            const std::unique_ptr<TraceSource> source =
                WorkloadRepository::instance().open_trace_source(
                    stream_spec, static_cast<std::size_t>(chunk));
            result = flow.run_hybrid(*source, method, pool, gating);
        } else {
            result = flow.run_hybrid(trace_of(args.positional[0]), method, pool, gating);
        }
        result.report.energy.print(std::cout, "hybrid energy (" + pool.to_string() + "):");
        std::printf("banks: %zu   wakeups: %llu\n", result.base.solution.arch.num_banks(),
                    static_cast<unsigned long long>(result.report.total_wakeups()));
        for (std::size_t b = 0; b < result.base.solution.arch.num_banks(); ++b) {
            const Bank& bank = result.base.solution.arch.banks()[b];
            const HybridBankReport& slice = result.report.banks[b];
            const double gated_pct =
                slice.activity.total_cycles() == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(slice.activity.gated_cycles) /
                          static_cast<double>(slice.activity.total_cycles());
            std::printf("  bank [%zu, %zu) -> %s  %-8s heat#%zu  gated %.1f%%\n",
                        bank.first_block, bank.end_block(),
                        format_bytes(bank.size_bytes).c_str(),
                        technology_name(result.techs[b]), result.heat_rank[b], gated_pct);
        }
        if (jw != nullptr) to_json(*jw, result);
        return 0;
    }
    if (method == ClusterMethod::None) {
        FlowResult result;
        if (!stream_spec.empty()) {
            const std::int64_t chunk = args.get_int("chunk-size", 0);
            usage_require(chunk >= 0, "partition: --chunk-size expects a non-negative count");
            const std::unique_ptr<TraceSource> source =
                WorkloadRepository::instance().open_trace_source(
                    stream_spec, static_cast<std::size_t>(chunk));
            result = flow.run(*source, method);
        } else {
            result = flow.run(trace_of(args.positional[0]), method);
        }
        result.energy.print(std::cout, "partitioned energy:");
        std::printf("banks: %zu\n", result.solution.arch.num_banks());
        if (jw != nullptr) to_json(*jw, result);
        return 0;
    }
    FlowComparison cmp;
    if (!stream_spec.empty()) {
        const std::int64_t chunk = args.get_int("chunk-size", 0);
        usage_require(chunk >= 0, "partition: --chunk-size expects a non-negative count");
        const std::unique_ptr<TraceSource> source =
            WorkloadRepository::instance().open_trace_source(
                stream_spec, static_cast<std::size_t>(chunk));
        cmp = flow.compare(*source, method);
    } else {
        cmp = flow.compare(trace_of(args.positional[0]), method);
    }
    if (jw != nullptr) to_json(*jw, cmp);
    energy_comparison_table({
                                {"monolithic", cmp.monolithic},
                                {"partitioned", cmp.partitioned.energy},
                                {cluster_method_name(method) + "-clustered",
                                 cmp.clustered.energy},
                            })
        .print(std::cout);
    std::printf("\nclustering savings vs partitioning: %.1f%%\n", cmp.clustering_savings_pct());
    for (const Bank& b : cmp.clustered.solution.arch.banks())
        std::printf("  bank [%zu, %zu) -> %s\n", b.first_block, b.end_block(),
                    format_bytes(b.size_bytes).c_str());
    return 0;
}

int cmd_compress(const Args& args, JsonWriter* jw) {
    usage_require(!args.positional.empty(), "compress: missing kernel name");
    const KernelRunPtr artifact = WorkloadRepository::instance().run(args.positional[0]);
    const AssembledProgram& program = artifact->program;
    const RunResult& run = artifact->result;

    const std::string platform_name = args.get("platform", "vliw");
    const PlatformModel platform =
        platform_name == "risc" ? risc_platform() : vliw_platform();
    usage_require(platform_name == "vliw" || platform_name == "risc",
                  "compress: unknown platform '" + platform_name + "'");

    const DiffCodec diff;
    const ZeroRunCodec zero_run;
    const BdiCodec bdi;
    const DictionaryCodec dict = DictionaryCodec::train(run.data_trace, 16);
    const std::string codec_name = args.get("codec", "diff");
    const LineCodec* codec = nullptr;
    if (codec_name == "diff") codec = &diff;
    else if (codec_name == "zero-run") codec = &zero_run;
    else if (codec_name == "bdi") codec = &bdi;
    else if (codec_name == "dictionary") codec = &dict;
    else throw UsageError("compress: unknown codec '" + codec_name + "'");

    const auto base = CompressedMemorySim(platform.config, nullptr)
                          .run(run.data_trace, program.data, program.data_base);
    const auto comp = CompressedMemorySim(platform.config, codec)
                          .run(run.data_trace, program.data, program.data_base);
    base.energy.print(std::cout, "uncompressed:");
    comp.energy.print(std::cout, "\nwith " + codec_name + " codec:");
    std::printf("\ntraffic ratio: %.3f   total savings: %.1f%%\n", comp.traffic_ratio(),
                100.0 * (base.energy.total() - comp.energy.total()) / base.energy.total());
    if (jw != nullptr) {
        jw->begin_object();
        jw->member("platform", platform_name);
        jw->member("codec", codec_name);
        jw->key("baseline");
        to_json(*jw, base);
        jw->key("compressed");
        to_json(*jw, comp);
        jw->member("savings_pct", 100.0 * (base.energy.total() - comp.energy.total()) /
                                      base.energy.total());
        jw->end_object();
    }
    return 0;
}

int cmd_encode(const Args& args, JsonWriter* jw) {
    usage_require(!args.positional.empty(), "encode: missing kernel name");
    const RunResult& run =
        WorkloadRepository::instance().run(args.positional[0], /*fetch=*/true)->result;

    TransformSearchParams params;
    params.max_gates = static_cast<std::size_t>(args.get_int("gates", 16));
    const TransformSearchResult result = search_transform(run.fetch_stream, params);
    const BusEnergyModel bus;
    const EnergyBreakdown net = encoded_energy(result.transform, run.fetch_stream,
                                               bus.technology().energy_per_transition_pj);

    std::printf("raw transitions    : %llu\n",
                (unsigned long long)result.original_transitions);
    std::printf("encoded transitions: %llu (-%.1f%%)\n",
                (unsigned long long)result.encoded_transitions, 100.0 * result.reduction());
    std::printf("gates used         : %zu\n", result.transform.gate_count());
    for (const XorGate& g : result.transform.gates())
        std::printf("  bit[%2u] ^= bit[%2u]\n", g.dst, g.src);
    net.print(std::cout, "\nencoded-side energy (bus + decoder):");
    if (jw != nullptr) {
        jw->begin_object();
        jw->key("search");
        to_json(*jw, result);
        jw->key("encoded_energy");
        net.to_json(*jw);
        jw->end_object();
    }
    return 0;
}

int cmd_fault(const Args& args, JsonWriter* jw) {
    usage_require(!args.positional.empty(), "fault: missing kernel name");
    const KernelRunPtr artifact = WorkloadRepository::instance().run(args.positional[0]);
    const AssembledProgram& program = artifact->program;
    const RunResult& run = artifact->result;

    FaultCampaignConfig config;
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    config.trials = static_cast<std::size_t>(args.get_int("trials", 64));
    config.bit_flip_rate = args.get_double("rate", 1e-4);
    config.line_bytes = static_cast<unsigned>(args.get_int("line", 32));
    usage_require(config.trials > 0, "fault: --trials expects a positive count");
    usage_require(config.bit_flip_rate >= 0.0 && config.bit_flip_rate <= 1.0,
                  "fault: --rate expects a probability in [0,1]");

    const std::string prot_name = args.get("protection", "secded");
    if (prot_name == "none") config.protection = ProtectionScheme::None;
    else if (prot_name == "parity") config.protection = ProtectionScheme::Parity;
    else if (prot_name == "secded") config.protection = ProtectionScheme::Secded;
    else throw UsageError("fault: unknown protection '" + prot_name + "'");

    const DiffCodec diff;
    const ZeroRunCodec zero_run;
    const BdiCodec bdi;
    const DictionaryCodec dict = DictionaryCodec::train(run.data_trace, 16);
    const std::string codec_name = args.get("codec", "none");
    if (codec_name == "none") config.codec = nullptr;
    else if (codec_name == "diff") config.codec = &diff;
    else if (codec_name == "zero-run") config.codec = &zero_run;
    else if (codec_name == "bdi") config.codec = &bdi;
    else if (codec_name == "dictionary") config.codec = &dict;
    else throw UsageError("fault: unknown codec '" + codec_name + "'");
    config.codec_tag = codec_name;

    const auto corpus = line_corpus(program.data, config.line_bytes);

    // Drowsy scaling: partition the kernel's trace, replay it against the
    // sleepy-bank model, and raise each line's flip rate by its bank's
    // sleep residency (drowsy banks hold state at reduced noise margins).
    const double drowsy = args.get_double("drowsy", 0.0);
    usage_require(drowsy >= 0.0, "fault: --drowsy expects a non-negative factor");
    std::vector<double> probs;
    if (drowsy > 0.0) {
        FlowParams fp;
        fp.constraints.max_banks = 4;
        const FlowResult fr =
            MemoryOptimizationFlow(fp).run(run.data_trace, ClusterMethod::Frequency);
        const SleepReport sleep = evaluate_partition_sleepy(
            fr.solution.arch, fr.map, run.data_trace, fp.energy, SleepParams{});
        probs = sleepy_line_probabilities(fr.solution.arch, fr.map, sleep,
                                          config.bit_flip_rate, drowsy, program.data_base,
                                          corpus.size(), config.line_bytes, run.cycles);
    }

    FaultCampaignResult result;
    const std::string ckpt_path = args.get("checkpoint", "");
    if (!ckpt_path.empty()) {
        CampaignCheckpointOptions copts;
        copts.path = ckpt_path;
        copts.resume = args.options.count("resume") != 0;
        const std::int64_t every = args.get_int("checkpoint-every", 16);
        usage_require(every > 0, "fault: --checkpoint-every expects a positive count");
        copts.every = static_cast<std::size_t>(every);
        const std::int64_t max_units = args.get_int("ckpt-max-units", 0);
        usage_require(max_units >= 0, "fault: --ckpt-max-units expects a non-negative count");
        copts.max_trials_this_run = static_cast<std::size_t>(max_units);
        const CampaignCheckpointOutcome outcome =
            run_campaign_checkpointed(config, corpus, probs, copts);
        if (!outcome.completed) {
            std::printf("campaign interrupted: %zu/%zu trials done (%s)\n"
                        "(checkpoint -> %s; rerun with --resume to continue)\n",
                        outcome.trials_done, outcome.trials_total,
                        outcome.stop_reason.c_str(), ckpt_path.c_str());
            if (jw != nullptr) jw->null();
            g_partial_reason = outcome.stop_reason;
            return 3;
        }
        result = outcome.result;
    } else {
        usage_require(args.options.count("resume") == 0,
                      "fault: --resume requires --checkpoint PATH");
        result = run_campaign(config, corpus, probs);
    }
    std::printf("campaign        : %zu lines x %zu trials, %s codec, %s protection\n",
                corpus.size(), config.trials, codec_name.c_str(),
                protection_name(config.protection));
    std::printf("faults injected : %llu\n", (unsigned long long)result.faults_injected);
    std::printf("corrected words : %llu\n", (unsigned long long)result.corrected);
    std::printf("detected words  : %llu\n", (unsigned long long)result.detected);
    std::printf("codec rejects   : %llu\n", (unsigned long long)result.codec_rejects);
    std::printf("degraded lines  : %llu (rate %.3e)\n",
                (unsigned long long)result.degraded, result.degraded_rate());
    std::printf("silent corrupt  : %llu (residual rate %.3e)\n",
                (unsigned long long)result.silent, result.residual_corruption_rate());
    std::printf("clean lines     : %llu\n", (unsigned long long)result.clean);
    result.energy.print(std::cout, "\ncampaign energy:");
    std::printf("\nprotection + recovery overhead: %.1f%% of base access energy\n",
                100.0 * result.energy_overhead());
    if (jw != nullptr) to_json(*jw, result);
    return 0;
}

int cmd_schedule(const Args& args) {
    AppGenParams params;
    params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const Application app = generate_application(params);
    const ReconfArch arch;
    const auto naive = evaluate_schedule(app, arch, naive_schedule(app, arch));
    const auto optimal = evaluate_schedule(app, arch, optimal_schedule(app, arch));
    naive.print(std::cout, "naive schedule:");
    optimal.print(std::cout, "\noptimal schedule:");
    std::printf("\nsavings: %.1f%%\n",
                100.0 * (naive.total() - optimal.total()) / naive.total());
    return 0;
}

int cmd_study(const Args& args, JsonWriter* jw) {
    usage_require(!args.positional.empty(), "study: missing kernel name (or 'all')");
    StudyParams params;
    params.flow.constraints.max_banks = 4;

    const std::string ckpt_path = args.get("checkpoint", "");
    usage_require(ckpt_path.empty() || args.positional[0] == "all",
                  "study: --checkpoint requires 'study all'");
    usage_require(ckpt_path.empty() ? args.options.count("resume") == 0 : true,
                  "study: --resume requires --checkpoint PATH");

    if (args.positional[0] == "all" && !ckpt_path.empty()) {
        // Checkpointed whole-suite study: kernels run in order, the
        // finished prefix snapshots after each batch, and resumed kernels
        // splice their recorded JSON into the envelope byte-identically.
        StudyCheckpointOptions sopts;
        sopts.path = ckpt_path;
        sopts.resume = args.options.count("resume") != 0;
        const std::int64_t every = args.get_int("checkpoint-every", 1);
        usage_require(every > 0, "study: --checkpoint-every expects a positive count");
        sopts.every = static_cast<std::size_t>(every);
        const std::int64_t max_units = args.get_int("ckpt-max-units", 0);
        usage_require(max_units >= 0, "study: --ckpt-max-units expects a non-negative count");
        sopts.max_kernels_this_run = static_cast<std::size_t>(max_units);
        sopts.config_tag = "banks=4";  // fingerprint of every result-shaping flag

        const std::vector<Kernel> kernels = kernel_suite();
        const StudySuiteOutcome outcome = study_suite_checkpointed(kernels, params, 0, sopts);
        TablePrinter table({"kernel", "1B-1 clustering [%]", "1B-2 compression [%]",
                            "1B-3 encoding [%]"});
        for (const StudyOutcome& o : outcome.outcomes)
            table.add_row({o.name, format_fixed(o.clustering_savings_pct, 1),
                           format_fixed(o.compression_savings_pct, 1),
                           format_fixed(o.encoding_reduction_pct, 1)});
        table.print(std::cout);
        if (!outcome.completed) {
            std::printf("\nstudy interrupted: %zu/%zu kernels done (%s)\n"
                        "(checkpoint -> %s; rerun with --resume to continue)\n",
                        outcome.outcomes.size(), outcome.total,
                        outcome.stop_reason.c_str(), ckpt_path.c_str());
            if (jw != nullptr) jw->null();
            g_partial_reason = outcome.stop_reason;
            return 3;
        }
        std::printf("\n(%zu kernels studied with %zu jobs)\n", outcome.outcomes.size(),
                    default_jobs());
        if (jw != nullptr) {
            jw->begin_array();
            for (const StudyOutcome& o : outcome.outcomes) jw->raw_fragment(o.json);
            jw->end_array();
        }
        return 0;
    }

    if (args.positional[0] == "all") {
        // Whole-suite batch study: every (kernel x optimization) evaluated
        // concurrently on the parallel runtime.
        const std::vector<StudyReport> reports = study_suite(kernel_suite(), params);
        TablePrinter table({"kernel", "1B-1 clustering [%]", "1B-2 compression [%]",
                            "1B-3 encoding [%]"});
        for (const StudyReport& report : reports)
            table.add_row({report.name, format_fixed(report.clustering_savings_pct(), 1),
                           format_fixed(report.compression_savings_pct(), 1),
                           format_fixed(report.encoding_reduction_pct(), 1)});
        table.print(std::cout);
        std::printf("\n(%zu kernels studied with %zu jobs)\n", reports.size(),
                    default_jobs());
        if (jw != nullptr) {
            jw->begin_array();
            for (const StudyReport& report : reports) to_json(*jw, report);
            jw->end_array();
        }
        return 0;
    }

    const StudyReport report = study_kernel(kernel_by_name(args.positional[0]), params);
    if (jw != nullptr) to_json(*jw, report);
    std::printf("study for %s\n", report.name.c_str());
    std::printf("  1B-1 clustering savings vs partitioning : %6.1f %%\n",
                report.clustering_savings_pct());
    std::printf("  1B-2 compression savings (memory path)  : %6.1f %%\n",
                report.compression_savings_pct());
    std::printf("  1B-3 bus-transition reduction           : %6.1f %%\n",
                report.encoding_reduction_pct());
    report.memory.clustered.energy.print(std::cout, "\nclustered data-memory breakdown:");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    // Declared outside the try so the catch blocks can discard a staged
    // document and (on cancellation) publish the minimal partial one.
    std::string json_path;
    std::string json_target;
    AtomicOstream json_file;
    std::optional<JsonWriter> jw;
    try {
        const Args args = Args::parse(argc, argv, 2);
        // Global knob: bound the parallel runtime before any command runs.
        // 0 means "use the default" (MEMOPT_JOBS or hardware concurrency);
        // anything negative is a user error, not a silent default.
        const std::int64_t jobs = args.get_int("jobs", 0);
        usage_require(jobs >= 0, "--jobs expects a non-negative integer (0 = use default)");
        if (jobs > 0) set_default_jobs(static_cast<std::size_t>(jobs));

        // Cooperative watchdog: SIGINT/SIGTERM always feed the global
        // token; --deadline-sec additionally arms the wall clock. Engines
        // poll it at unit boundaries and stop gracefully (exit code 3).
        install_cancellation_handlers();
        if (args.options.count("deadline-sec") != 0) {
            const double deadline = args.get_double("deadline-sec", 0.0);
            usage_require(deadline >= 0.0, "--deadline-sec expects a non-negative number");
            CancellationToken::global().set_deadline_sec(deadline);
        }

        // Global knob: export a memopt.report.v1 JSON document. The envelope
        // (schema/command/target + trailing metrics snapshot) is written
        // here; each command fills in its "results" value. Bytes stage into
        // <FILE>.tmp and publish by rename only when the document closed
        // cleanly, so a crashed or interrupted run never leaves a truncated
        // document under the final name.
        json_path = args.get("json", "");
        json_target = args.positional.empty() ? std::string{} : args.positional[0];
        if (!json_path.empty()) {
            const bool supported = command == "run" || command == "partition" ||
                                   command == "compress" || command == "encode" ||
                                   command == "study" || command == "fault";
            usage_require(supported, "--json is not supported for command '" + command + "'");
            require(json_file.open_staged(json_path),
                    "cannot open --json file '" + json_path + "'");
            jw.emplace(json_file);
            jw->begin_object();
            jw->member("schema", command == "fault" ? "memopt.fault.v1"
                                                    : "memopt.report.v1");
            jw->member("command", command);
            jw->member("target", json_target);
            jw->key("results");
        }
        JsonWriter* writer = jw.has_value() ? &*jw : nullptr;

        int rc = 0;
        if (command == "kernels") rc = cmd_kernels();
        else if (command == "run") rc = cmd_run(args, writer);
        else if (command == "disasm") rc = cmd_disasm(args);
        else if (command == "cc") rc = cmd_cc(args);
        else if (command == "trace") rc = cmd_trace(args);
        else if (command == "partition") rc = cmd_partition(args, writer);
        else if (command == "compress") rc = cmd_compress(args, writer);
        else if (command == "encode") rc = cmd_encode(args, writer);
        else if (command == "schedule") rc = cmd_schedule(args);
        else if (command == "study") rc = cmd_study(args, writer);
        else if (command == "fault") rc = cmd_fault(args, writer);
        else {
            std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
            return usage();
        }

        if (jw.has_value() && (rc == 0 || rc == 3)) {
            if (rc == 3) {
                // The command wrote null results; record why it stopped.
                jw->member("partial", true);
                jw->member("reason", g_partial_reason);
            }
            if (json_metrics_enabled()) {
                jw->key("metrics");
                MetricsRegistry::instance().snapshot().to_json(*jw);
            }
            jw->end_object();
            MEMOPT_ASSERT_MSG(jw->complete(), "memopt_cli: unbalanced JSON document");
            json_file << '\n';
            require(json_file.commit(), "failed writing --json file '" + json_path + "'");
            std::printf("(json report -> %s)\n", json_path.c_str());
        } else {
            json_file.discard();
        }
        return rc;
    } catch (const UsageError& e) {
        json_file.discard();
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    } catch (const CancelledError& e) {
        // Cancellation surfaced mid-command (no checkpointed driver caught
        // it): the staged envelope is incomplete, so discard it and publish
        // the minimal partial document instead.
        json_file.discard();
        if (!json_path.empty()) {
            std::string reason = CancellationToken::global().reason();
            if (reason.empty()) reason = e.what();
            try {
                write_partial_json(json_path, command, json_target, reason);
                std::printf("(json report -> %s)\n", json_path.c_str());
            } catch (const std::exception& pe) {
                std::fprintf(stderr, "error: partial --json report failed: %s\n", pe.what());
            }
        }
        std::fprintf(stderr, "interrupted: %s\n", e.what());
        return 3;
    } catch (const Error& e) {
        json_file.discard();
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        json_file.discard();
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
