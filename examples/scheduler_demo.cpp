// scheduler_demo — data scheduling on a multi-context reconfigurable array.
//
// Builds a small hand-written "video pipeline" application (the kind of
// kernel chain 1B-4 targets), schedules it with the naive, greedy and exact
// solvers, and prints the per-phase placements chosen by the best schedule.
#include <cstdio>
#include <iostream>

#include "sched/scheduler.hpp"
#include "support/table.hpp"

int main() {
    using namespace memopt;

    // A 4-stage video pipeline: fetch -> transform -> quantize -> encode,
    // looping over 2 frames, with a shared coefficient table.
    Application app;
    app.name = "video-pipeline";
    app.num_contexts = 4;
    app.datasets = {
        {"frame_in", 6 * 1024}, {"coeffs", 512},      {"workbuf", 1536},
        {"quantbuf", 1536},     {"bitstream", 3 * 1024},
    };
    for (int frame = 0; frame < 2; ++frame) {
        app.phases.push_back({"fetch", 0, {{0, 1536 * 2}, {2, 1536}}});
        app.phases.push_back({"transform", 1, {{2, 40000}, {1, 30000}}});
        app.phases.push_back({"quantize", 2, {{2, 12000}, {3, 12000}, {1, 8000}}});
        app.phases.push_back({"encode", 3, {{3, 9000}, {4, 6000}}});
    }
    app.validate();

    const ReconfArch arch;
    const DataSchedule naive = naive_schedule(app, arch);
    const DataSchedule greedy = greedy_schedule(app, arch);
    const DataSchedule optimal = optimal_schedule(app, arch);

    const auto e_naive = evaluate_schedule(app, arch, naive);
    const auto e_greedy = evaluate_schedule(app, arch, greedy);
    const auto e_opt = evaluate_schedule(app, arch, optimal);

    TablePrinter table({"scheduler", "data access [uJ]", "movement [uJ]", "context [uJ]",
                        "total [uJ]"});
    auto row = [&](const char* label, const EnergyBreakdown& e) {
        char buf[4][32];
        std::snprintf(buf[0], sizeof buf[0], "%.2f", e.component("data_access") / 1e6);
        std::snprintf(buf[1], sizeof buf[1], "%.2f", e.component("data_movement") / 1e6);
        std::snprintf(buf[2], sizeof buf[2], "%.2f", e.component("context_load") / 1e6);
        std::snprintf(buf[3], sizeof buf[3], "%.2f", e.total() / 1e6);
        table.add_row({label, buf[0], buf[1], buf[2], buf[3]});
    };
    row("naive (all-L2 static)", e_naive);
    row("greedy", e_greedy);
    row("optimal (exact DP)", e_opt);
    table.print(std::cout);

    std::printf("\noptimal schedule (context prefetch: %s):\n",
                optimal.prefetch_contexts ? "on" : "off");
    TablePrinter placement({"phase", "frame_in", "coeffs", "workbuf", "quantbuf", "bitstream"});
    for (std::size_t p = 0; p < app.phases.size(); ++p) {
        std::vector<std::string> cells{app.phases[p].name};
        for (std::size_t d = 0; d < app.datasets.size(); ++d)
            cells.push_back(mem_level_name(optimal.assignment[p][d]));
        placement.add_row(cells);
    }
    placement.print(std::cout);

    std::printf("\nscheduling saved %.1f%% vs the naive placement.\n",
                100.0 * (e_naive.total() - e_opt.total()) / e_naive.total());
    return 0;
}
