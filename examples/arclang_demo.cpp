// arclang_demo — write a workload in arclang, compile it to AR32, and run
// the full optimization study on it.
//
// Shows the intended authoring path for users who do not want to write
// AR32 assembly: a moving-average filter over smooth sensor data, written
// in ~20 lines of arclang, becomes a first-class workload for every
// experiment in the toolkit.
#include <cstdio>
#include <iostream>

#include "core/study.hpp"
#include "lang/codegen.hpp"
#include "support/string_util.hpp"

int main() {
    using namespace memopt;

    const char* source = R"(
// moving-average filter over 512 smooth samples, window 8
array input[520] = smooth(2026, 1000000);
array output[512];
var i = 0;
while (i < 512) {
    var k = 0;
    var acc = 0;
    k = 0;
    acc = 0;
    while (k < 8) {
        acc = acc + (input[i + k] >> 16);
        k = k + 1;
    }
    output[i] = acc >> 3;
    i = i + 1;
}
// checksum
var n = 0;
var cks = 0;
while (n < 512) {
    cks = cks + output[n];
    n = n + 1;
}
out(cks);
)";

    std::puts("arclang source (moving-average filter):");
    std::puts(source);

    const std::string asm_text = lang::compile_to_asm(source);
    const AssembledProgram program = assemble(asm_text);
    std::printf("compiled to %zu AR32 instructions, %zu bytes of data\n\n",
                program.code.size(), program.data.size());

    CpuConfig config;
    config.record_fetch_stream = true;
    const RunResult run = Cpu(config).run(program);
    std::printf("executed %llu instructions; checksum 0x%08x; %zu data accesses\n\n",
                static_cast<unsigned long long>(run.instructions), run.output.at(0),
                run.data_trace.size());

    // Full study: partitioning/clustering, compression, bus encoding.
    StudyParams params;
    params.flow.constraints.max_banks = 4;
    const StudyReport report = study_trace("movavg", run.data_trace, program.data,
                                           program.data_base, run.fetch_stream, params);
    std::printf("optimization study for the compiled kernel:\n");
    std::printf("  clustering savings vs partitioning : %6.1f %%\n",
                report.clustering_savings_pct());
    std::printf("  compression savings (memory path)  : %6.1f %%\n",
                report.compression_savings_pct());
    std::printf("  bus-transition reduction           : %6.1f %%\n",
                report.encoding_reduction_pct());
    std::printf("\nfirst lines of the generated assembly:\n");
    std::size_t shown = 0;
    for (const auto line : split(asm_text, '\n')) {
        if (shown++ == 12) break;
        std::printf("  %.*s\n", static_cast<int>(line.size()), line.data());
    }
    return 0;
}
