// multi_app — shared-memory synthesis for several applications.
//
// An embedded SoC usually runs more than one task against the same on-chip
// memory. This example profiles three kernels, merges their profiles with
// duty-cycle weights, synthesizes ONE clustered multi-bank architecture for
// the merged profile, and then shows how that shared architecture performs
// for each individual application versus its privately optimized one.
#include <cstdio>
#include <iostream>

#include "cluster/frequency.hpp"
#include "cluster/remap_cost.hpp"
#include "core/flow.hpp"
#include "core/workload.hpp"
#include "partition/solver.hpp"
#include "sim/kernels.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

int main() {
    using namespace memopt;

    struct App {
        const char* kernel;
        double duty;  // fraction of runtime this task is active
    };
    const App apps[] = {{"biquad", 0.6}, {"crc32", 0.3}, {"histogram", 0.1}};

    // 1. Profile each application.
    std::vector<BlockProfile> profiles;
    std::vector<double> weights;
    for (const App& app : apps) {
        // Shared artifacts: a second profiling pass (or another example in
        // the same process) reuses the simulation instead of re-running it.
        const RunResult& run = WorkloadRepository::instance().run(app.kernel)->result;
        profiles.push_back(BlockProfile::from_trace(run.data_trace, 256));
        weights.push_back(app.duty);
        std::printf("%-10s duty %.0f%%  %llu accesses\n", app.kernel, 100 * app.duty,
                    (unsigned long long)profiles.back().total_accesses());
    }

    // 2. Merge into the shared workload profile and synthesize one
    //    clustered architecture for it.
    const BlockProfile shared = BlockProfile::merge(profiles, weights);
    const AddressMap map = frequency_clustering(shared);
    const BlockProfile physical = map.apply(shared);

    PartitionEnergyParams energy;
    energy.extra_pj_per_access = RemapTableModel(physical.num_blocks()).lookup_energy();
    const PartitionSolution shared_solution =
        solve_partition_optimal(physical, {4}, energy);

    std::printf("\nshared architecture (%zu banks):\n", shared_solution.arch.num_banks());
    for (const Bank& b : shared_solution.arch.banks())
        std::printf("  [%4zu, %4zu) -> %s\n", b.first_block, b.end_block(),
                    format_bytes(b.size_bytes).c_str());

    // 3. Evaluate each application on the shared architecture (same remap,
    //    same banks) versus its privately optimized architecture.
    TablePrinter table({"application", "private [nJ]", "shared [nJ]", "penalty [%]"});
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        // Private optimum for this app alone.
        FlowParams fp;
        fp.block_size = 256;
        fp.constraints.max_banks = 4;
        const MemoryOptimizationFlow flow(fp);
        const FlowResult private_best =
            flow.run(profiles[i], ClusterMethod::Frequency, nullptr);

        // This app's traffic through the shared architecture. The shared
        // map may span more blocks than the app's profile covers; extend
        // the app profile to the shared span first.
        BlockProfile extended(256, shared.num_blocks());
        for (std::size_t b = 0; b < profiles[i].num_blocks(); ++b)
            extended.add_counts(b, profiles[i].counts(b).reads, profiles[i].counts(b).writes);
        const BlockProfile app_physical = map.apply(extended);
        const auto shared_energy =
            evaluate_partition(shared_solution.arch, app_physical, energy);

        const double priv = private_best.energy.total();
        const double shrd = shared_energy.total();
        table.add_row({apps[i].kernel, format_fixed(priv / 1e3, 1),
                       format_fixed(shrd / 1e3, 1),
                       format_fixed(100.0 * (shrd - priv) / priv, 1)});
    }
    std::printf("\n");
    table.print(std::cout);
    std::printf("\nOne shared architecture serves all three tasks; each pays a penalty\n"
                "versus its private optimum, smallest for the dominant task because the\n"
                "duty-cycle weights steer the merged profile toward it. All three still\n"
                "sit far below the monolithic baseline.\n");
    return 0;
}
