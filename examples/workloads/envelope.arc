// Peak-envelope follower over smooth "audio": attack fast, decay slow.
// Run:  memopt_cli cc examples/workloads/envelope.arc
array input[512] = smooth(77, 2000000);
array envelope[512];
var env = 0;
var i = 0;
while (i < 512) {
    var x = 0;
    x = input[i] >> 16;
    if (x < 0) {
        x = -x;
    }
    if (x > env) {
        env = x;                      // instant attack
    } else {
        env = env - (env >> 5);       // exponential decay
    }
    envelope[i] = env;
    i = i + 1;
}
var cks = 0;
i = 0;
while (i < 512) {
    cks = cks + envelope[i];
    i = i + 1;
}
out(cks);
