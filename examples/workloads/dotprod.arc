// 256-element dot product over random vectors.
// Run:  memopt_cli cc examples/workloads/dotprod.arc
array a[256] = rand(17);
array b[256] = rand(18);
var i = 0;
var acc = 0;
while (i < 256) {
    acc = acc + a[i] * b[i];
    i = i + 1;
}
out(acc);
