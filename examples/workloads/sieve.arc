// Sieve of Eratosthenes up to 1024; outputs the prime count (172).
// Run:  memopt_cli cc examples/workloads/sieve.arc
array flags[1024];
var i = 2;
while (i < 1024) {
    flags[i] = 1;
    i = i + 1;
}
i = 2;
while (i * i < 1024) {
    if (flags[i] == 1) {
        var j = 0;
        j = i * i;
        while (j < 1024) {
            flags[j] = 0;
            j = j + i;
        }
    }
    i = i + 1;
}
var count = 0;
i = 2;
while (i < 1024) {
    count = count + flags[i];
    i = i + 1;
}
out(count);
