// energy_report — full per-kernel memory-energy report.
//
// Runs one bundled AR32 kernel (default: crc32, or argv[1]) on the
// instruction-set simulator and prints everything the toolkit can say about
// it: run statistics, profile shape, the three memory architectures with
// their energies, and the selected clustering map.
#include <cstdio>
#include <iostream>
#include <string>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "sim/kernels.hpp"
#include "support/string_util.hpp"

int main(int argc, char** argv) {
    using namespace memopt;
    const std::string name = argc > 1 ? argv[1] : "crc32";

    const Kernel& kernel = kernel_by_name(name);
    std::cout << "kernel " << kernel.name << ": " << kernel.description << "\n";

    CpuConfig config;
    config.record_fetch_stream = true;
    const RunResult run = run_kernel(kernel, config);
    std::printf("executed %llu instructions in %llu cycles; %zu data accesses "
                "(%llu reads / %llu writes)\n",
                static_cast<unsigned long long>(run.instructions),
                static_cast<unsigned long long>(run.cycles), run.data_trace.size(),
                static_cast<unsigned long long>(run.data_trace.read_count()),
                static_cast<unsigned long long>(run.data_trace.write_count()));
    std::printf("outputs:");
    for (std::uint32_t v : run.output) std::printf(" 0x%08x", v);
    std::printf("\n\n");

    const BlockProfile profile = BlockProfile::from_trace(run.data_trace, 256);
    std::printf("profile: %zu blocks of 256 B; hottest 8 blocks hold %.1f%% of accesses; "
                "spatial locality %.2f\n\n",
                profile.num_blocks(), 100.0 * profile.hot_fraction(8),
                profile.spatial_locality());

    FlowParams params;
    params.block_size = 256;
    params.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(params);
    const FlowComparison cmp = flow.compare(run.data_trace, ClusterMethod::Affinity);

    energy_comparison_table({
                                {"monolithic", cmp.monolithic},
                                {"partitioned", cmp.partitioned.energy},
                                {"affinity-clustered", cmp.clustered.energy},
                            })
        .print(std::cout);

    std::cout << "\npartitioned banks:\n";
    for (const Bank& b : cmp.partitioned.solution.arch.banks())
        std::cout << "  [" << b.first_block << ", " << b.end_block() << ") -> "
                  << format_bytes(b.size_bytes) << "\n";
    std::cout << "clustered banks:\n";
    for (const Bank& b : cmp.clustered.solution.arch.banks())
        std::cout << "  [" << b.first_block << ", " << b.end_block() << ") -> "
                  << format_bytes(b.size_bytes) << "\n";

    std::printf("\nclustering moved the %zu hottest logical blocks to the front of the "
                "physical space;\nsavings vs partitioning alone: %.1f%%\n",
                std::min<std::size_t>(8, profile.num_blocks()), cmp.clustering_savings_pct());
    return 0;
}
