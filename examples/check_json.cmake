# ctest driver for the memopt_cli --json export.
#
# Runs `memopt_cli study all --json` at --jobs 1 and --jobs 8, validates
# both documents with `python -m json.tool`, and checks that the documents
# are identical outside the "metrics" section (timers are wall-clock, so
# only "metrics" may differ between job counts) — the determinism contract
# of the observability layer.
#
# Invoked as:
#   cmake -DCLI=<memopt_cli> -DPYTHON=<python3> -DWORK_DIR=<scratch>
#         -P check_json.cmake
foreach(var CLI PYTHON WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_json.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "check_json.cmake: command failed (${rc}): ${ARGN}")
  endif()
endfunction()

run_checked(${CLI} study all --json ${WORK_DIR}/study_j1.json --jobs 1)
run_checked(${CLI} study all --json ${WORK_DIR}/study_j8.json --jobs 8)

# Both documents must be valid JSON.
run_checked(${PYTHON} -m json.tool ${WORK_DIR}/study_j1.json)
run_checked(${PYTHON} -m json.tool ${WORK_DIR}/study_j8.json)

# Schema envelope present, and results bit-identical across job counts.
file(WRITE ${WORK_DIR}/compare_reports.py [=[
import json
import sys

with open(sys.argv[1]) as f:
    a = json.load(f)
with open(sys.argv[2]) as f:
    b = json.load(f)
for doc in (a, b):
    for key in ("schema", "command", "target", "results", "metrics"):
        if key not in doc:
            sys.exit(f"missing top-level key: {key}")
    if doc["schema"] != "memopt.report.v1":
        sys.exit(f"unexpected schema: {doc['schema']}")
a.pop("metrics")
b.pop("metrics")
if a != b:
    sys.exit("results differ between --jobs 1 and --jobs 8")
]=])
run_checked(${PYTHON} ${WORK_DIR}/compare_reports.py
            ${WORK_DIR}/study_j1.json ${WORK_DIR}/study_j8.json)
