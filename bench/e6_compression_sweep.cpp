// E6 — 1B-2 figure: sensitivity of compression savings to the D-cache line
// size and to the off-chip energy cost. The paper's scheme compresses
// per-line, so longer lines give the codec more context (better ratios)
// while the off-chip per-byte energy scales how much a saved byte is worth.
#include <cstdio>
#include <optional>
#include <iostream>

#include "bench_util.hpp"
#include "support/csv.hpp"
#include "compress/diff_codec.hpp"
#include "compress/platform.hpp"
#include "support/parallel.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace memopt;

namespace {

/// Suite-average memory-path savings for one configuration. The per-kernel
/// simulations are independent; they run concurrently (MEMOPT_JOBS) and the
/// accumulator consumes the order-preserving results serially, so the mean
/// is bit-identical at any job count.
double avg_path_savings(const CompressedMemConfig& config,
                        const std::vector<bench::KernelRunPtr>& runs) {
    const DiffCodec codec;
    const std::vector<double> savings = parallel_map(runs, [&](const bench::KernelRunPtr& run) {
        const auto base = CompressedMemorySim(config, nullptr)
                              .run(run->result.data_trace, run->program.data,
                                   run->program.data_base);
        const auto comp = CompressedMemorySim(config, &codec)
                              .run(run->result.data_trace, run->program.data,
                                   run->program.data_base);
        const double b = base.energy.component("main_memory");
        const double c = comp.energy.component("main_memory") + comp.energy.component("codec");
        return percent_savings(b, c);
    });
    Accumulator acc;
    for (double s : savings) acc.add(s);
    return acc.mean();
}

}  // namespace

int main() {
    bench::print_header(
        "E6  compression savings vs line size and off-chip energy",
        "per-line compression gains grow with line size and off-chip cost (figure shape)",
        "AR32 kernel suite; VLIW platform baseline config, one axis swept at a time");

    const auto runs = bench::run_suite();
    const PlatformModel base_platform = vliw_platform();

    std::puts("\n-- (a) line-size sweep -----------------------------------------");
    TablePrinter line_table({"line size", "avg mem-path savings [%]"});
    std::vector<double> by_line;
    bench::BenchReport report("e6_compression_sweep");
    auto csv = bench::csv_sink("e6_compression_sweep");
    std::optional<CsvWriter> csv_writer;
    if (csv) {
        csv_writer.emplace(*csv);
        csv_writer->write_row({"axis", "value", "avg_savings_pct"});
    }
    for (unsigned line : {16u, 32u, 64u}) {
        CompressedMemConfig cfg = base_platform.config;
        cfg.cache.line_bytes = line;
        by_line.push_back(avg_path_savings(cfg, runs));
        line_table.add_row({format("%u B", line), format_fixed(by_line.back(), 1)});
        if (csv_writer) csv_writer->write_row_numeric("line_bytes", {double(line), by_line.back()});
        report.add_row({{"axis", "line_bytes"},
                        {"value", static_cast<double>(line)},
                        {"avg_savings_pct", by_line.back()}});
    }
    line_table.print(std::cout);

    std::puts("\n-- (b) off-chip per-byte energy sweep --------------------------");
    TablePrinter dram_table({"per-byte multiplier", "avg mem-path savings [%]"});
    std::vector<double> by_cost;
    for (double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        CompressedMemConfig cfg = base_platform.config;
        cfg.dram.per_byte_pj *= mult;
        by_cost.push_back(avg_path_savings(cfg, runs));
        dram_table.add_row({format_fixed(mult, 2), format_fixed(by_cost.back(), 1)});
        if (csv_writer) csv_writer->write_row_numeric("per_byte_mult", {mult, by_cost.back()});
        report.add_row({{"axis", "per_byte_mult"},
                        {"value", mult},
                        {"avg_savings_pct", by_cost.back()}});
    }
    dram_table.print(std::cout);

    bool cost_monotone = true;
    for (std::size_t i = 1; i < by_cost.size(); ++i)
        cost_monotone = cost_monotone && by_cost[i] >= by_cost[i - 1] - 1e-9;
    std::printf("\n");
    report.finish(by_line.back() > by_line.front() && cost_monotone,
                  "savings grow with line size and monotonically with the off-chip "
                  "per-byte energy");
    return 0;
}
