// E14 — heterogeneous bank pools: hybrid vs homogeneous, with dark-silicon
// gating.
//
// The dark-silicon heterogeneous-memory line of work (PAPERS.md) predicts
// that once banks can be built in different technologies, a hybrid pool
// (hot clusters in fast SRAM, cold mass in dense, low-leakage NVM) beats
// every homogeneous design. This bench synthesizes the banked architecture
// per workload, then evaluates four homogeneous pools and the free-mix
// hybrid pool under the gating controller, and ablates the gate quality to
// show the gating savings are monotone: better gates (lower residual gated
// leakage) never cost energy, because the gating residency is fixed by the
// access pattern, not by the technology.
#include <algorithm>
#include <array>
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "core/flow.hpp"
#include "support/parallel.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace memopt;

namespace {

constexpr std::array<double, 5> kGateLeakScales{1.0, 0.5, 0.2, 0.05, 0.0};

const char* kHomogeneous[] = {"sram", "edram", "sttmram", "drowsy"};

}  // namespace

int main() {
    bench::print_header(
        "E14  heterogeneous bank pools: hybrid vs homogeneous under gating",
        "dark-silicon heterogeneous memory: a free-mix hybrid pool matches or beats "
        "every homogeneous pool on every workload and strictly wins on some, and "
        "total energy is monotone non-increasing as gate quality improves",
        "AR32 kernel suite; <=8 banks, frequency clustering; 200-cycle idle "
        "threshold; pools: sram / edram / sttmram / drowsy homogeneous vs "
        "sram,edram,sttmram,drowsy free mix");

    FlowParams fp;
    fp.block_size = 256;
    fp.constraints.max_banks = 8;

    struct Row {
        std::string name;
        std::array<double, 4> homogeneous_pj{};
        double hybrid_pj = 0.0;
        std::array<double, kGateLeakScales.size()> sweep_pj{};
        std::uint64_t gated_cycles = 0;
        std::uint64_t wakeups = 0;
    };

    // One workload per task; every evaluation inside a task is sequential
    // (run_hybrid replays the trace on the calling thread), so the ordered
    // reduction below is bit-identical at any MEMOPT_JOBS.
    const auto rows = parallel_map(bench::run_suite(), [&](const bench::KernelRunPtr& run) {
        FlowParams kernel_fp = fp;
        kernel_fp.energy.runtime_cycles = run->result.cycles;
        const MemoryOptimizationFlow flow(kernel_fp);
        const MemTrace& trace = run->result.data_trace;

        Row row;
        row.name = run->name;
        for (std::size_t p = 0; p < 4; ++p) {
            const auto result = flow.run_hybrid(
                trace, ClusterMethod::Frequency,
                BankPool::homogeneous(parse_technology(kHomogeneous[p])));
            row.homogeneous_pj[p] = result.total();
        }
        const BankPool mix = BankPool::parse("sram,edram,sttmram,drowsy");
        for (std::size_t i = 0; i < kGateLeakScales.size(); ++i) {
            HybridGatingParams gating;
            gating.gate_leak_scale = kGateLeakScales[i];
            const auto result = flow.run_hybrid(trace, ClusterMethod::Frequency, mix, gating);
            row.sweep_pj[i] = result.total();
            if (i == 0) {
                row.hybrid_pj = result.total();
                row.gated_cycles = result.report.total_gated_cycles();
                row.wakeups = result.report.total_wakeups();
            }
        }
        return row;
    });

    TablePrinter table({"benchmark", "sram [nJ]", "edram [nJ]", "sttmram [nJ]",
                        "drowsy [nJ]", "hybrid [nJ]", "vs best homog [%]"});
    bench::BenchReport report("e14_hybrid_sweep");
    Accumulator savings;
    std::size_t strict_wins = 0;
    bool never_worse = true;
    std::array<double, kGateLeakScales.size()> sweep_total{};
    for (const Row& row : rows) {
        const double best_homog =
            *std::min_element(row.homogeneous_pj.begin(), row.homogeneous_pj.end());
        const double vs_best = percent_savings(best_homog, row.hybrid_pj);
        savings.add(vs_best);
        // The free mix can at worst replicate the best homogeneous choice in
        // every bank, so "hybrid worse" (beyond FP noise) is a solver bug.
        if (row.hybrid_pj > best_homog * (1.0 + 1e-9)) never_worse = false;
        if (row.hybrid_pj < best_homog * (1.0 - 1e-3)) ++strict_wins;
        for (std::size_t i = 0; i < kGateLeakScales.size(); ++i)
            sweep_total[i] += row.sweep_pj[i];

        table.add_row({row.name, format_fixed(row.homogeneous_pj[0] / 1e3, 1),
                       format_fixed(row.homogeneous_pj[1] / 1e3, 1),
                       format_fixed(row.homogeneous_pj[2] / 1e3, 1),
                       format_fixed(row.homogeneous_pj[3] / 1e3, 1),
                       format_fixed(row.hybrid_pj / 1e3, 1), format_fixed(vs_best, 2)});
        report.add_row({{"benchmark", row.name},
                        {"sram_nj", row.homogeneous_pj[0] / 1e3},
                        {"edram_nj", row.homogeneous_pj[1] / 1e3},
                        {"sttmram_nj", row.homogeneous_pj[2] / 1e3},
                        {"drowsy_nj", row.homogeneous_pj[3] / 1e3},
                        {"hybrid_nj", row.hybrid_pj / 1e3},
                        {"hybrid_vs_best_homog_pct", vs_best},
                        {"gated_cycles", row.gated_cycles},
                        {"wakeups", row.wakeups}});
    }
    table.print(std::cout);

    // Gate-quality ablation: scaling every technology's residual gated
    // leakage downward can only shrink per-bank costs, so the assignment
    // optimum — and the suite total — must be monotone non-increasing.
    bool monotone = true;
    std::printf("\ngate-quality ablation (suite total):\n");
    for (std::size_t i = 0; i < kGateLeakScales.size(); ++i) {
        std::printf("  gate_leak_scale %.2f -> %.4f nJ\n", kGateLeakScales[i],
                    sweep_total[i] / 1e3);
        if (i > 0 && sweep_total[i] > sweep_total[i - 1] * (1.0 + 1e-12)) monotone = false;
    }
    std::printf("hybrid strictly beats the best homogeneous pool on %zu/%zu workloads "
                "(avg savings %.2f%%)\n",
                strict_wins, rows.size(), savings.mean());

    report.summary({{"strict_wins", strict_wins},
                    {"workloads", rows.size()},
                    {"avg_savings_vs_best_homog_pct", savings.mean()},
                    {"sweep_total_scale1_nj", sweep_total.front() / 1e3},
                    {"sweep_total_scale0_nj", sweep_total.back() / 1e3}});
    report.finish(never_worse && strict_wins >= 1 && monotone,
                  "the free-mix hybrid pool never loses to a homogeneous pool, strictly "
                  "wins on at least one workload, and energy is monotone non-increasing "
                  "as gate quality improves");
    return 0;
}
