# ctest driver for the E-bench MEMOPT_JSON_DIR export.
#
# Runs one experiment with MEMOPT_JSON_DIR pointed at a scratch directory,
# validates the emitted figure data with `python -m json.tool`, and checks
# the shared memopt.bench.v1 envelope (schema/experiment/rows/shape/metrics).
#
# Invoked as:
#   cmake -DBENCH=<experiment-binary> -DNAME=<experiment-name>
#         -DPYTHON=<python3> -DWORK_DIR=<scratch> -P check_bench_json.cmake
foreach(var BENCH NAME PYTHON WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_bench_json.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "check_bench_json.cmake: command failed (${rc}): ${ARGN}")
  endif()
endfunction()

run_checked(${CMAKE_COMMAND} -E env MEMOPT_JSON_DIR=${WORK_DIR} ${BENCH})

set(doc ${WORK_DIR}/${NAME}.json)
if(NOT EXISTS ${doc})
  message(FATAL_ERROR "check_bench_json.cmake: ${BENCH} did not write ${doc}")
endif()
run_checked(${PYTHON} -m json.tool ${doc})

file(WRITE ${WORK_DIR}/check_envelope.py [=[
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("schema", "experiment", "rows", "shape", "metrics"):
    if key not in doc:
        sys.exit(f"missing top-level key: {key}")
if doc["schema"] != "memopt.bench.v1":
    sys.exit(f"unexpected schema: {doc['schema']}")
if doc["experiment"] != sys.argv[2]:
    sys.exit(f"unexpected experiment name: {doc['experiment']}")
if not isinstance(doc["rows"], list) or not doc["rows"]:
    sys.exit("rows must be a non-empty array")
if not isinstance(doc["shape"].get("ok"), bool):
    sys.exit("shape.ok must be a boolean")
]=])
run_checked(${PYTHON} ${WORK_DIR}/check_envelope.py ${doc} ${NAME})
