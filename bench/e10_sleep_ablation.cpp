// E10 — extension ablation: leakage-aware partitioning with sleepy banks.
//
// The 1B-1 line of work flags leakage-aware banking as the natural next
// step: once banks can sleep, the *temporal* structure of the trace starts
// to matter. This bench replays kernel traces through the synthesized
// architectures with a sleep controller and compares the clustering
// policies under the time-aware objective, where affinity clustering (which
// groups co-accessed blocks) should reduce wake-ups versus pure frequency
// ordering.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/flow.hpp"
#include "partition/sleep.hpp"
#include "support/parallel.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace memopt;

namespace {

struct SleepyResult {
    double energy_pj = 0.0;
    std::uint64_t wakeups = 0;
};

SleepyResult run_sleepy(const FlowResult& flow_result, const MemTrace& trace,
                        const PartitionEnergyParams& params, const SleepParams& sleep) {
    PartitionEnergyParams with_remap = params;
    if (!flow_result.map.is_identity())
        with_remap.extra_pj_per_access =
            RemapTableModel(flow_result.map.num_blocks()).lookup_energy();
    const SleepReport report = evaluate_partition_sleepy(
        flow_result.solution.arch, flow_result.map, trace, with_remap, sleep);
    return SleepyResult{report.energy.total(), report.total_wakeups()};
}

}  // namespace

int main() {
    bench::print_header(
        "E10  leakage-aware extension: sleepy banks under clustering policies",
        "extension (paper future work): with sleepy banks, partitioned+clustered "
        "memories keep their advantage over the unclustered baseline, and the "
        "clustering-policy choice itself is second-order",
        "AR32 kernel suite; <=4 banks; 200-cycle idle threshold, sleep leakage 8%, "
        "40 pJ wake-up; leakage included in partitioning objective");

    FlowParams fp;
    fp.block_size = 256;
    fp.constraints.max_banks = 4;
    fp.energy.runtime_cycles = 1;  // placeholder; replay uses real cycles
    const SleepParams sleep;

    TablePrinter table({"benchmark", "none [nJ]", "freq [nJ]", "affinity [nJ]",
                        "freq wakeups", "aff wakeups", "aff vs freq [%]"});
    bench::BenchReport report("e10_sleep_ablation");
    Accumulator gain;
    std::uint64_t total_freq_wakeups = 0;
    std::uint64_t total_aff_wakeups = 0;
    bool clustered_beats_none = true;

    // Each kernel's three synthesis+replay evaluations are independent;
    // run them concurrently (MEMOPT_JOBS) and reduce the ordered rows
    // serially so every aggregate stays bit-identical at any job count.
    struct Row {
        std::string name;
        SleepyResult none, freq, aff;
    };
    const auto rows = parallel_map(bench::run_suite(), [&](const bench::KernelRunPtr& run) {
        // Let the partitioner see leakage over the real run length.
        FlowParams kernel_fp = fp;
        kernel_fp.energy.runtime_cycles = run->result.cycles;
        const MemoryOptimizationFlow flow(kernel_fp);
        const MemTrace& trace = run->result.data_trace;

        const FlowResult none = flow.run(trace, ClusterMethod::None);
        const FlowResult freq = flow.run(trace, ClusterMethod::Frequency);
        const FlowResult aff = flow.run(trace, ClusterMethod::Affinity);

        return Row{run->name, run_sleepy(none, trace, kernel_fp.energy, sleep),
                   run_sleepy(freq, trace, kernel_fp.energy, sleep),
                   run_sleepy(aff, trace, kernel_fp.energy, sleep)};
    });

    for (const Row& row : rows) {
        total_freq_wakeups += row.freq.wakeups;
        total_aff_wakeups += row.aff.wakeups;
        clustered_beats_none =
            clustered_beats_none && row.freq.energy_pj < row.none.energy_pj;
        const double aff_vs_freq = percent_savings(row.freq.energy_pj, row.aff.energy_pj);
        gain.add(aff_vs_freq);
        table.add_row({row.name, format_fixed(row.none.energy_pj / 1e3, 1),
                       format_fixed(row.freq.energy_pj / 1e3, 1),
                       format_fixed(row.aff.energy_pj / 1e3, 1),
                       format("%llu", (unsigned long long)row.freq.wakeups),
                       format("%llu", (unsigned long long)row.aff.wakeups),
                       format_fixed(aff_vs_freq, 2)});
        report.add_row({{"benchmark", row.name},
                        {"none_nj", row.none.energy_pj / 1e3},
                        {"freq_nj", row.freq.energy_pj / 1e3},
                        {"aff_nj", row.aff.energy_pj / 1e3},
                        {"freq_wakeups", row.freq.wakeups},
                        {"aff_wakeups", row.aff.wakeups},
                        {"aff_vs_freq_pct", aff_vs_freq}});
    }
    table.print(std::cout);

    std::printf("\ntotal wake-ups: frequency %llu, affinity %llu; avg affinity-vs-frequency "
                "gain %.2f%%\n",
                (unsigned long long)total_freq_wakeups, (unsigned long long)total_aff_wakeups,
                gain.mean());
    const double wakeup_delta =
        std::abs(double(total_aff_wakeups) - double(total_freq_wakeups)) /
        double(total_freq_wakeups);
    report.summary({{"total_freq_wakeups", total_freq_wakeups},
                    {"total_aff_wakeups", total_aff_wakeups},
                    {"avg_aff_vs_freq_pct", gain.mean()}});
    report.finish(clustered_beats_none && wakeup_delta < 0.10 &&
                      std::abs(gain.mean()) < 1.0,
                  "clustering keeps beating the unclustered baseline under the sleepy "
                  "objective; frequency vs affinity differ by well under 1% — the "
                  "time-aware objective is access-dominated at this technology point");
    return 0;
}
