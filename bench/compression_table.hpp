// Shared driver for the E4/E5 compression tables (same experiment on two
// platform models).
#pragma once

#include <string>

#include "compress/platform.hpp"

namespace memopt::bench {

/// Run the 1B-2 per-benchmark compression table on one platform and print
/// it. `report_name` is the MEMOPT_JSON_DIR file stem for the structured
/// BenchReport export; `paper_range` is the savings band claimed by the
/// paper for this platform; returns true when the measured media-kernel
/// band overlaps it.
bool run_compression_table(const PlatformModel& platform, const std::string& experiment_id,
                           const std::string& report_name, const std::string& paper_range,
                           double paper_lo, double paper_hi);

}  // namespace memopt::bench
