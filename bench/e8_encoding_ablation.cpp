// E8 — 1B-3 ablation: reduction versus the hardware budget (number of
// 2-input XOR gates in the fetch-path decoder). The paper's "frugal"
// argument is that a handful of single-gate transforms already captures
// most of the achievable savings; this bench quantifies that curve.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "support/csv.hpp"
#include "encoding/search.hpp"
#include "support/parallel.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace memopt;

int main() {
    bench::print_header(
        "E8  transition reduction vs gate budget",
        "a few XOR gates capture most of the achievable reduction (frugality claim)",
        "AR32 kernel fetch streams; greedy gate search, budget swept 1..64");

    const auto runs = bench::run_suite(/*fetch=*/true);
    const std::vector<std::size_t> budgets{1, 2, 4, 8, 16, 32, 64};

    TablePrinter table({"gates", "avg reduction [%]", "min [%]", "max [%]"});
    std::vector<double> avg_curve;
    bench::BenchReport report("e8_gate_budget");
    auto csv = bench::csv_sink("e8_gate_budget");
    std::optional<CsvWriter> csv_writer;
    if (csv) {
        csv_writer.emplace(*csv);
        csv_writer->write_row({"gates", "avg_reduction_pct", "min_pct", "max_pct"});
    }
    for (std::size_t gates : budgets) {
        // Independent per-kernel searches run concurrently (MEMOPT_JOBS);
        // the accumulator consumes the ordered results serially.
        const auto pcts = parallel_map(runs, [&](const bench::KernelRunPtr& run) {
            return 100.0 * search_transform(run->result.fetch_stream,
                                            {.max_gates = gates}).reduction();
        });
        Accumulator acc;
        for (double pct : pcts) acc.add(pct);
        avg_curve.push_back(acc.mean());
        table.add_row({format("%zu", gates), format_fixed(acc.mean(), 1),
                       format_fixed(acc.min(), 1), format_fixed(acc.max(), 1)});
        if (csv_writer)
            csv_writer->write_row_numeric(format("%zu", gates),
                                          {acc.mean(), acc.min(), acc.max()});
        report.add_row({{"gates", static_cast<std::uint64_t>(gates)},
                        {"avg_reduction_pct", acc.mean()},
                        {"min_reduction_pct", acc.min()},
                        {"max_reduction_pct", acc.max()}});
    }
    table.print(std::cout);

    bool monotone = true;
    for (std::size_t i = 1; i < avg_curve.size(); ++i)
        monotone = monotone && avg_curve[i] >= avg_curve[i - 1] - 1e-9;

    // Frugality: the marginal reduction per added gate decreases with the
    // budget — the first gate is the most valuable one, which is the
    // paper's case for single-gate ("frugal") transforms.
    bool diminishing = true;
    double prev_marginal = 1e9;
    for (std::size_t i = 1; i < avg_curve.size(); ++i) {
        const double marginal = (avg_curve[i] - avg_curve[i - 1]) /
                                static_cast<double>(budgets[i] - budgets[i - 1]);
        diminishing = diminishing && marginal <= prev_marginal + 1e-9;
        prev_marginal = marginal;
    }
    const double first_gate = avg_curve.front();
    std::printf("\nthe first gate alone removes %.1f%% of all transitions\n", first_gate);
    report.summary({{"first_gate_reduction_pct", first_gate}});
    report.finish(monotone && diminishing && first_gate > 3.0,
                  "reduction is monotone in the budget and per-gate marginal utility "
                  "decreases — single-gate transforms are the best value per gate");
    return 0;
}
