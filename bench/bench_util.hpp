// Shared helpers for the experiment-reproduction benches.
#pragma once

#include <initializer_list>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/workload.hpp"
#include "support/durable/atomic_file.hpp"
#include "support/json.hpp"

namespace memopt::bench {

// The per-bench KernelRun copies moved to the process-wide
// WorkloadRepository (core/workload.hpp); the aliases keep the historical
// bench-local names working.
using memopt::KernelRun;
using memopt::KernelRunPtr;

/// The whole kernel suite with its simulation artifacts (fetch streams
/// when `fetch` is set), served from the shared WorkloadRepository: the
/// suite is simulated at most once per bench process, concurrently on
/// first touch (MEMOPT_JOBS threads), and every call shares the same
/// immutable artifacts.
std::vector<KernelRunPtr> run_suite(bool fetch = false);

/// Print the standard bench header: experiment id, paper claim, setup.
void print_header(const std::string& experiment, const std::string& paper_claim,
                  const std::string& setup);

/// Print the closing shape-check line ("SHAPE <ok/warn>: ...").
void print_shape(bool ok, const std::string& message);

/// Figure-data export: when the MEMOPT_CSV_DIR environment variable is set,
/// returns a crash-safe staged stream for <dir>/<name>.csv that publishes
/// on destruction (see AtomicOstream); otherwise nullopt. When the
/// directory is missing or the open fails, warns on stderr naming the path
/// and returns nullopt — the bench still runs, and the dropped export is
/// diagnosable. Lets plots be regenerated from the exact series a bench
/// printed.
std::optional<AtomicOstream> csv_sink(const std::string& name);

/// Machine-readable export: like csv_sink, but on <dir>/<name>.json with
/// the directory taken from MEMOPT_JSON_DIR.
std::optional<AtomicOstream> json_sink(const std::string& name);

/// The path json_sink would write to, without opening it — for tools like
/// google-benchmark that insist on creating the output file themselves.
/// Used by perf_micro to emit BENCH_perf.json so the perf trajectory can
/// be tracked across PRs.
std::optional<std::string> json_path(const std::string& name);

/// Structured export of one bench run: a "memopt.bench.v1" JSON document
/// written to <MEMOPT_JSON_DIR>/<name>.json through the shared JsonWriter
/// (support/json.hpp), so every E-bench emits the same schema as
/// `memopt_cli --json`:
///
///   { "schema": "memopt.bench.v1", "experiment": <name>,
///     "rows": [ {...}, ... ], "summary": {...}?,
///     "shape": {"ok": bool, "message": str}, "metrics": {...} }
///
/// "rows"/"summary" mirror the printed tables and are deterministic at any
/// job count; "metrics" carries the wall-clock observability snapshot.
/// When MEMOPT_JSON_DIR is unset every method is a no-op, so benches use
/// the report unconditionally. finish() also prints the standard SHAPE
/// line (it replaces the bare print_shape() call).
class BenchReport {
public:
    /// One row/summary field value. The implicit constructors make
    /// add_row({{"kernel", name}, {"savings_pct", 12.5}, ...}) read like
    /// the table rows it mirrors.
    struct Value {
        std::variant<std::string, double, std::int64_t, std::uint64_t, bool> v;
        Value(const char* s) : v(std::string(s)) {}
        Value(const std::string& s) : v(s) {}
        Value(double d) : v(d) {}
        Value(int i) : v(static_cast<std::int64_t>(i)) {}
        Value(std::int64_t i) : v(i) {}
        Value(std::uint64_t u) : v(u) {}
        Value(unsigned u) : v(static_cast<std::uint64_t>(u)) {}
        Value(bool b) : v(b) {}
    };
    using Field = std::pair<std::string, Value>;

    explicit BenchReport(const std::string& name);
    ~BenchReport();

    BenchReport(const BenchReport&) = delete;
    BenchReport& operator=(const BenchReport&) = delete;

    /// True when MEMOPT_JSON_DIR is set and the sink opened.
    bool active() const { return writer_.has_value(); }

    /// Append one object to "rows". Call before summary()/finish().
    void add_row(std::initializer_list<Field> fields);

    /// Emit the optional "summary" object (aggregate numbers the bench
    /// prints below its table). At most once, after the last add_row().
    void summary(std::initializer_list<Field> fields);

    /// Print the SHAPE line and, when active, write "shape" + "metrics"
    /// and close the document (throws memopt::Error on write failure).
    void finish(bool shape_ok, const std::string& message);

private:
    void write_fields(std::initializer_list<Field> fields);
    void close_rows();

    std::string path_;
    AtomicOstream out_;
    std::optional<JsonWriter> writer_;
    bool rows_open_ = false;
    bool finished_ = false;
};

}  // namespace memopt::bench
