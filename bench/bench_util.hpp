// Shared helpers for the experiment-reproduction benches.
#pragma once

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/workload.hpp"

namespace memopt::bench {

// The per-bench KernelRun copies moved to the process-wide
// WorkloadRepository (core/workload.hpp); the aliases keep the historical
// bench-local names working.
using memopt::KernelRun;
using memopt::KernelRunPtr;

/// The whole kernel suite with its simulation artifacts (fetch streams
/// when `fetch` is set), served from the shared WorkloadRepository: the
/// suite is simulated at most once per bench process, concurrently on
/// first touch (MEMOPT_JOBS threads), and every call shares the same
/// immutable artifacts.
std::vector<KernelRunPtr> run_suite(bool fetch = false);

/// Print the standard bench header: experiment id, paper claim, setup.
void print_header(const std::string& experiment, const std::string& paper_claim,
                  const std::string& setup);

/// Print the closing shape-check line ("SHAPE <ok/warn>: ...").
void print_shape(bool ok, const std::string& message);

/// Figure-data export: when the MEMOPT_CSV_DIR environment variable is set,
/// returns an open stream on <dir>/<name>.csv (throws memopt::Error if the
/// file cannot be created); otherwise nullopt. Lets plots be regenerated
/// from the exact series a bench printed.
std::optional<std::ofstream> csv_sink(const std::string& name);

/// Machine-readable export: like csv_sink, but on <dir>/<name>.json with
/// the directory taken from MEMOPT_JSON_DIR.
std::optional<std::ofstream> json_sink(const std::string& name);

/// The path json_sink would write to, without opening it — for tools like
/// google-benchmark that insist on creating the output file themselves.
/// Used by perf_micro to emit BENCH_perf.json so the perf trajectory can
/// be tracked across PRs.
std::optional<std::string> json_path(const std::string& name);

}  // namespace memopt::bench
