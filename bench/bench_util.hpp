// Shared helpers for the experiment-reproduction benches.
#pragma once

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "sim/cpu.hpp"
#include "sim/kernels.hpp"

namespace memopt::bench {

/// A kernel together with its simulation artifacts, computed once per bench.
struct KernelRun {
    std::string name;
    AssembledProgram program;
    RunResult result;
};

/// Run the whole kernel suite (data traces always recorded; fetch streams
/// when `fetch` is set).
std::vector<KernelRun> run_suite(bool fetch = false);

/// Print the standard bench header: experiment id, paper claim, setup.
void print_header(const std::string& experiment, const std::string& paper_claim,
                  const std::string& setup);

/// Print the closing shape-check line ("SHAPE <ok/warn>: ...").
void print_shape(bool ok, const std::string& message);

/// Figure-data export: when the MEMOPT_CSV_DIR environment variable is set,
/// returns an open stream on <dir>/<name>.csv (throws memopt::Error if the
/// file cannot be created); otherwise nullopt. Lets plots be regenerated
/// from the exact series a bench printed.
std::optional<std::ofstream> csv_sink(const std::string& name);

}  // namespace memopt::bench
