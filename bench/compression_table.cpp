#include "compression_table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "compress/diff_codec.hpp"
#include "compress/zero_run.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

namespace memopt::bench {

namespace {
/// The media-flavoured subset standing in for the paper's Ptolemy/
/// MediaBench programs. The remaining kernels (control/integer codes with
/// incompressible data) are reported too, as an honest lower envelope.
bool is_media_kernel(const std::string& name) {
    return name == "fir" || name == "biquad" || name == "histogram" || name == "rle" ||
           name == "conv3x3" || name == "listchase" || name == "strsearch" ||
           name == "fft16" || name == "dither";
}
}  // namespace

bool run_compression_table(const PlatformModel& platform, const std::string& experiment_id,
                           const std::string& report_name, const std::string& paper_range,
                           double paper_lo, double paper_hi) {
    print_header(experiment_id + "  energy-driven data compression (" + platform.name + ")",
                 paper_range,
                 platform.description +
                     "; diff codec on write-back, decompress on refill; savings are over "
                     "the main-memory/bus path (the paper's energy target)");

    const DiffCodec diff;
    const ZeroRunCodec zero_run;
    TablePrinter table({"benchmark", "D$ miss [%]", "traffic ratio", "mem-path base [nJ]",
                        "mem-path diff [nJ]", "diff savings [%]", "zero-run savings [%]",
                        "total savings [%]"});
    BenchReport report(report_name);
    std::vector<double> media_savings;

    for (const auto& run_ptr : run_suite()) {
        const KernelRun& run = *run_ptr;
        const auto base = CompressedMemorySim(platform.config, nullptr)
                              .run(run.result.data_trace, run.program.data, run.program.data_base);
        const auto comp = CompressedMemorySim(platform.config, &diff)
                              .run(run.result.data_trace, run.program.data, run.program.data_base);
        const auto zr = CompressedMemorySim(platform.config, &zero_run)
                            .run(run.result.data_trace, run.program.data, run.program.data_base);

        const double base_path = base.energy.component("main_memory");
        const double comp_path =
            comp.energy.component("main_memory") + comp.energy.component("codec");
        const double zr_path = zr.energy.component("main_memory") + zr.energy.component("codec");
        const double path_savings = percent_savings(base_path, comp_path);
        const double total_savings = percent_savings(base.energy.total(), comp.energy.total());
        if (is_media_kernel(run.name)) media_savings.push_back(path_savings);

        table.add_row({run.name + (is_media_kernel(run.name) ? " *" : ""),
                       format_fixed(100.0 * base.cache_stats.miss_rate(), 1),
                       format_fixed(comp.traffic_ratio(), 2), format_fixed(base_path / 1e3, 1),
                       format_fixed(comp_path / 1e3, 1), format_fixed(path_savings, 1),
                       format_fixed(percent_savings(base_path, zr_path), 1),
                       format_fixed(total_savings, 1)});
        report.add_row({{"benchmark", run.name},
                        {"media_kernel", is_media_kernel(run.name)},
                        {"dcache_miss_pct", 100.0 * base.cache_stats.miss_rate()},
                        {"traffic_ratio", comp.traffic_ratio()},
                        {"mem_path_base_nj", base_path / 1e3},
                        {"mem_path_diff_nj", comp_path / 1e3},
                        {"diff_savings_pct", path_savings},
                        {"zero_run_savings_pct", percent_savings(base_path, zr_path)},
                        {"total_savings_pct", total_savings}});
    }
    table.print(std::cout);
    std::puts("(*) media-flavoured kernels, the workload class of the paper's table");

    const double lo = *std::min_element(media_savings.begin(), media_savings.end());
    const double hi = *std::max_element(media_savings.begin(), media_savings.end());
    std::printf("\nmeasured media-kernel band: %.1f%% .. %.1f%%   (paper: %.0f%%-%.0f%%)\n", lo,
                hi, paper_lo, paper_hi);
    const bool overlap = hi >= paper_lo && lo <= paper_hi && hi > 0.0;
    report.summary({{"media_band_lo_pct", lo},
                    {"media_band_hi_pct", hi},
                    {"paper_lo_pct", paper_lo},
                    {"paper_hi_pct", paper_hi}});
    report.finish(overlap, "media-kernel savings band overlaps the paper's reported range; "
                           "incompressible kernels sit near zero as expected");
    return overlap;
}

}  // namespace memopt::bench
