// E13 — multi-core coherence: sharing traffic versus core count.
//
// Replays the producer-consumer workload (core 0 writes a shared region,
// the others read it) through the coherent N-core cache system for core
// counts 1..8 and reports the coherence traffic and its energy share. The
// qualitative shape: one core is coherence-silent, and invalidation +
// downgrade traffic grows with the consumer count because every producer
// store must reach (and kill or downgrade into) more remote copies.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "cache/mcache.hpp"
#include "core/workload.hpp"
#include "support/csv.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"
#include "trace/source.hpp"

using namespace memopt;

int main() {
    bench::print_header(
        "E13  coherence traffic vs core count",
        "sharing-induced invalidations and downgrades grow with the core count; "
        "a single core is coherence-silent",
        "producer-consumer synthetic (4 KiB shared region, 50% shared accesses), "
        "20k accesses per core; 8 KiB L1s, 4x64 KiB L2 banks, MSI directory");

    const std::string spec =
        "synthetic:producer-consumer,span=65536,n=20000,seed=7,"
        "shared-bytes=4096,shared-frac=0.5";

    TablePrinter table({"cores", "msgs/1k acc", "invalidations", "downgrades",
                        "upgrades", "coherence [nJ]", "coh share [%]"});
    bench::BenchReport report("e13_coherence_sweep");
    auto csv = bench::csv_sink("e13_coherence_sweep");
    std::optional<CsvWriter> csv_writer;
    if (csv) {
        csv_writer.emplace(*csv);
        csv_writer->write_row({"cores", "messages_per_1k", "invalidations",
                               "downgrades", "upgrades", "coherence_nj",
                               "coherence_share_pct"});
    }

    std::vector<std::uint64_t> messages;
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        MultiCoreConfig config;
        config.cores = cores;
        MultiCoreCacheSystem system(config);
        const auto sources =
            WorkloadRepository::instance().open_core_trace_sources(spec, cores);
        system.replay(sources);
        system.flush();

        const CoherenceStats& cs = system.directory().stats();
        const EnergyBreakdown energy = system.energy();
        const double total_accesses =
            static_cast<double>(system.l1_totals().accesses());
        const double per_1k = 1000.0 * static_cast<double>(cs.messages()) / total_accesses;
        const double coherence_nj = energy.component("coherence") / 1e3;
        const double share = 100.0 * energy.component("coherence") / energy.total();
        messages.push_back(cs.messages());

        table.add_row({format("%u", cores), format_fixed(per_1k, 2),
                       format("%llu", (unsigned long long)cs.invalidations),
                       format("%llu", (unsigned long long)cs.downgrades),
                       format("%llu", (unsigned long long)cs.upgrades),
                       format_fixed(coherence_nj, 1), format_fixed(share, 2)});
        if (csv_writer)
            csv_writer->write_row_numeric(
                format("%u", cores),
                {per_1k, static_cast<double>(cs.invalidations),
                 static_cast<double>(cs.downgrades),
                 static_cast<double>(cs.upgrades), coherence_nj, share});
        report.add_row({{"cores", static_cast<std::uint64_t>(cores)},
                        {"messages_per_1k", per_1k},
                        {"invalidations", cs.invalidations},
                        {"downgrades", cs.downgrades},
                        {"upgrades", cs.upgrades},
                        {"coherence_nj", coherence_nj},
                        {"coherence_share_pct", share}});
    }
    table.print(std::cout);
    std::printf("\n");

    // Shape: no coherence traffic on one core; strictly more protocol
    // messages every time the consumer count grows.
    const bool shape = messages[0] == 0 && messages[0] < messages[1] &&
                       messages[1] < messages[2] && messages[2] < messages[3];
    report.finish(shape,
                  "coherence messages are zero at 1 core and grow with the core "
                  "count (every producer store reaches more remote copies)");
    return 0;
}
