// E5 — DATE'03 1B-2, table: per-benchmark energy savings from write-back
// data compression on the MIPS/SimpleScalar-class RISC platform
// (paper: 11-14%, a narrower band than the VLIW platform).
#include "compression_table.hpp"

int main() {
    memopt::bench::run_compression_table(
        memopt::risc_platform(), "E5", "e5_compression_risc",
        "11-14% energy savings on the MIPS platform simulated with SimpleScalar", 11.0, 14.0);
    return 0;
}
