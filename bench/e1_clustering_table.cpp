// E1 — DATE'03 1B-1, main table.
//
// Per-benchmark data-memory energy under three architectures:
//   monolithic | partitioned (no clustering) | address clustering + partition
// Paper: clustering saves on average 25% (max 57%) versus the partitioned
// memory synthesized without clustering, on embedded kernels on an ARM7.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"

using namespace memopt;

int main() {
    bench::print_header(
        "E1  address clustering: per-benchmark memory energy",
        "avg 25% (max 57%) energy reduction vs partitioning alone",
        "AR32 kernel suite; 256 B blocks; <=4 banks; exact DP partitioner; "
        "remap-table overhead charged to the clustered configurations");

    FlowParams fp;
    fp.block_size = 256;
    fp.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(fp);

    TablePrinter table({"benchmark", "monolithic [nJ]", "partitioned [nJ]", "freq-clustered [nJ]",
                        "aff-clustered [nJ]", "freq savings [%]", "aff savings [%]"});
    bench::BenchReport report("e1_clustering_table");
    std::vector<double> freq_savings;
    std::vector<double> aff_savings;

    // The (kernel x method) configurations are independent; evaluate each
    // method's batch concurrently (MEMOPT_JOBS) and assemble the table
    // serially from the order-preserving results.
    const auto runs = bench::run_suite();
    std::vector<const MemTrace*> traces;
    traces.reserve(runs.size());
    for (const auto& run : runs) traces.push_back(&run->result.data_trace);
    const auto freq_cmp = flow.compare_all(traces, ClusterMethod::Frequency);
    const auto aff_cmp = flow.compare_all(traces, ClusterMethod::Affinity);

    for (std::size_t i = 0; i < runs.size(); ++i) {
        const FlowComparison& freq = freq_cmp[i];
        const FlowComparison& aff = aff_cmp[i];
        freq_savings.push_back(freq.clustering_savings_pct());
        aff_savings.push_back(aff.clustering_savings_pct());
        table.add_row({runs[i]->name, format_fixed(freq.monolithic.total() / 1e3, 1),
                       format_fixed(freq.partitioned.energy.total() / 1e3, 1),
                       format_fixed(freq.clustered.energy.total() / 1e3, 1),
                       format_fixed(aff.clustered.energy.total() / 1e3, 1),
                       format_fixed(freq.clustering_savings_pct(), 1),
                       format_fixed(aff.clustering_savings_pct(), 1)});
        report.add_row({{"benchmark", runs[i]->name},
                        {"monolithic_nj", freq.monolithic.total() / 1e3},
                        {"partitioned_nj", freq.partitioned.energy.total() / 1e3},
                        {"freq_clustered_nj", freq.clustered.energy.total() / 1e3},
                        {"aff_clustered_nj", aff.clustered.energy.total() / 1e3},
                        {"freq_savings_pct", freq.clustering_savings_pct()},
                        {"aff_savings_pct", aff.clustering_savings_pct()}});
    }
    table.add_separator();
    table.add_row({"average", "", "", "", "", format_fixed(mean(freq_savings), 1),
                   format_fixed(mean(aff_savings), 1)});
    table.print(std::cout);

    const double avg = mean(freq_savings);
    const double max = percentile(freq_savings, 100.0);
    const double min = percentile(freq_savings, 0.0);
    std::printf("\nmeasured: avg %.1f%%  max %.1f%%  min %.1f%%   (paper: avg 25%%, max 57%%)\n",
                avg, max, min);
    report.summary({{"avg_freq_savings_pct", avg},
                    {"max_freq_savings_pct", max},
                    {"min_freq_savings_pct", min},
                    {"avg_aff_savings_pct", mean(aff_savings)}});
    report.finish(avg > 15.0 && max > 40.0 && min > 0.0,
                  "clustering beats plain partitioning on every kernel, with the "
                  "paper's avg/max magnitude");
    return 0;
}
