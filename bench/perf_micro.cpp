// E12 — throughput microbenchmarks (google-benchmark) for the core
// algorithms: ISS simulation rate, partitioning DP, clustering, the line
// codec, the gate search, the cache model, and the parallel E1 sweep.
// These guard the engineering claim that the whole evaluation runs at
// interactive speed on one core — and scales with MEMOPT_JOBS beyond it.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cache/cache.hpp"
#include "cluster/frequency.hpp"
#include "compress/diff_codec.hpp"
#include "core/flow.hpp"
#include "encoding/search.hpp"
#include "partition/solver.hpp"
#include "sim/kernels.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace memopt;

void BM_IssSimulation(benchmark::State& state) {
    const auto prog = assemble(kernel_by_name("fir").source);
    CpuConfig cfg;
    cfg.record_data_trace = false;
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        const RunResult r = Cpu(cfg).run(prog);
        instructions += r.instructions;
        benchmark::DoNotOptimize(r.output);
    }
    state.counters["instr/s"] = benchmark::Counter(static_cast<double>(instructions),
                                                   benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IssSimulation);

void BM_PartitionDp(benchmark::State& state) {
    const auto blocks = static_cast<std::size_t>(state.range(0));
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = blocks * 256, .num_accesses = 50000, .write_fraction = 0.3,
                 .seed = 1},
        .num_hotspots = 8,
        .hotspot_bytes = 1024,
        .hot_fraction = 0.9,
    });
    const BlockProfile profile = BlockProfile::from_trace(trace, 256);
    for (auto _ : state) {
        const auto sol = solve_partition_optimal(profile, {8}, {});
        benchmark::DoNotOptimize(sol.energy.total());
    }
}
BENCHMARK(BM_PartitionDp)->Arg(128)->Arg(512)->Arg(1024);

void BM_PartitionGreedy(benchmark::State& state) {
    const auto blocks = static_cast<std::size_t>(state.range(0));
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = blocks * 256, .num_accesses = 50000, .write_fraction = 0.3,
                 .seed = 1},
        .num_hotspots = 8,
        .hotspot_bytes = 1024,
        .hot_fraction = 0.9,
    });
    const BlockProfile profile = BlockProfile::from_trace(trace, 256);
    for (auto _ : state) {
        const auto sol = solve_partition_greedy(profile, {8}, {});
        benchmark::DoNotOptimize(sol.energy.total());
    }
}
BENCHMARK(BM_PartitionGreedy)->Arg(1024)->Arg(4096);

void BM_FrequencyClustering(benchmark::State& state) {
    const MemTrace trace = uniform_trace({.span_bytes = 256 * 1024, .num_accesses = 100000,
                                          .write_fraction = 0.3, .seed = 2});
    const BlockProfile profile = BlockProfile::from_trace(trace, 256);
    for (auto _ : state) {
        const AddressMap map = frequency_clustering(profile);
        benchmark::DoNotOptimize(map.num_blocks());
    }
}
BENCHMARK(BM_FrequencyClustering);

void BM_DiffCodecEncode(benchmark::State& state) {
    const DiffCodec codec;
    const auto words = smooth_word_stream(8, 0.8, 200, 3);
    const auto line = words_to_line(words);
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec.compressed_bits(line));
        bytes += line.size();
    }
    state.counters["bytes/s"] =
        benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DiffCodecEncode);

void BM_CacheSimulation(benchmark::State& state) {
    const MemTrace trace = uniform_trace({.span_bytes = 64 * 1024, .num_accesses = 100000,
                                          .write_fraction = 0.3, .seed = 4});
    std::uint64_t accesses = 0;
    for (auto _ : state) {
        CacheModel cache(CacheConfig{});
        for (const MemAccess& a : trace.accesses()) cache.access(a.addr, a.kind);
        accesses += trace.size();
        benchmark::DoNotOptimize(cache.stats().misses());
    }
    state.counters["accesses/s"] =
        benchmark::Counter(static_cast<double>(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheSimulation);

void BM_TransformSearch(benchmark::State& state) {
    CpuConfig cfg;
    cfg.record_data_trace = false;
    cfg.record_fetch_stream = true;
    const RunResult run = Cpu(cfg).run(assemble(kernel_by_name("qsort").source));
    for (auto _ : state) {
        const auto r = search_transform(run.fetch_stream,
                                        {.max_gates = static_cast<std::size_t>(state.range(0))});
        benchmark::DoNotOptimize(r.encoded_transitions);
    }
}
BENCHMARK(BM_TransformSearch)->Arg(4)->Arg(16);

void BM_FullFlow(benchmark::State& state) {
    const RunResult run = Cpu(CpuConfig{}).run(assemble(kernel_by_name("histogram").source));
    FlowParams fp;
    fp.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(fp);
    for (auto _ : state) {
        const FlowComparison cmp = flow.compare(run.data_trace, ClusterMethod::Frequency);
        benchmark::DoNotOptimize(cmp.clustering_savings_pct());
    }
}
BENCHMARK(BM_FullFlow);

// The E1 clustering sweep (both methods over the whole suite) at 1 and N
// jobs: the wall-clock ratio between the two arg rows is the speedup the
// parallel execution layer delivers on this machine. Workloads come from
// the shared repository, so the suite is simulated once per process no
// matter how many benchmark repetitions run.
void BM_E1ClusteringSweep(benchmark::State& state) {
    const auto runs = memopt::bench::run_suite();
    std::vector<const MemTrace*> traces;
    traces.reserve(runs.size());
    for (const auto& run : runs) traces.push_back(&run->result.data_trace);
    FlowParams fp;
    fp.block_size = 256;
    fp.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(fp);
    const auto jobs = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const auto freq = flow.compare_all(traces, ClusterMethod::Frequency, jobs);
        const auto aff = flow.compare_all(traces, ClusterMethod::Affinity, jobs);
        benchmark::DoNotOptimize(freq.data());
        benchmark::DoNotOptimize(aff.data());
    }
    state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_E1ClusteringSweep)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Custom entry point (instead of benchmark_main) so the run can also emit
// machine-readable results: with MEMOPT_JSON_DIR set, the full report is
// written to <dir>/BENCH_perf.json for cross-PR perf tracking. The path is
// injected as --benchmark_out right after argv[0], so flags given on the
// command line still win.
int main(int argc, char** argv) {
    std::vector<char*> args(argv, argv + argc);
    std::string out_flag, format_flag;
    if (const auto path = memopt::bench::json_path("BENCH_perf")) {
        out_flag = "--benchmark_out=" + *path;
        format_flag = "--benchmark_out_format=json";
        args.insert(args.begin() + 1, {out_flag.data(), format_flag.data()});
        std::printf("(figure data -> %s)\n", path->c_str());
    }
    int num_args = static_cast<int>(args.size());
    benchmark::Initialize(&num_args, args.data());
    if (benchmark::ReportUnrecognizedArguments(num_args, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
