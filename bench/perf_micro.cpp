// E12 — throughput microbenchmarks (google-benchmark) for the core
// algorithms: ISS simulation rate, partitioning DP, clustering, the line
// codec, the gate search, the cache model, and the parallel E1 sweep.
// These guard the engineering claim that the whole evaluation runs at
// interactive speed on one core — and scales with MEMOPT_JOBS beyond it.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cache/cache.hpp"
#include "cache/mcache.hpp"
#include "cluster/affinity_cluster.hpp"
#include "cluster/frequency.hpp"
#include "trace/affinity.hpp"
#include "compress/diff_codec.hpp"
#include "core/flow.hpp"
#include "encoding/search.hpp"
#include "partition/solver.hpp"
#include "sim/kernels.hpp"
#include "tools/lint/lint.hpp"
#include "trace/source.hpp"
#include "trace/stream_file.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace memopt;

void BM_IssSimulation(benchmark::State& state) {
    const auto prog = assemble(kernel_by_name("fir").source);
    CpuConfig cfg;
    cfg.record_data_trace = false;
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        const RunResult r = Cpu(cfg).run(prog);
        instructions += r.instructions;
        benchmark::DoNotOptimize(r.output);
    }
    state.counters["instr/s"] = benchmark::Counter(static_cast<double>(instructions),
                                                   benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IssSimulation);

void BM_PartitionDp(benchmark::State& state) {
    const auto blocks = static_cast<std::size_t>(state.range(0));
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = blocks * 256, .num_accesses = 50000, .write_fraction = 0.3,
                 .seed = 1},
        .num_hotspots = 8,
        .hotspot_bytes = 1024,
        .hot_fraction = 0.9,
    });
    const BlockProfile profile = BlockProfile::from_trace(trace, 256);
    for (auto _ : state) {
        const auto sol = solve_partition_optimal(profile, {8}, {});
        benchmark::DoNotOptimize(sol.energy.total());
    }
}
BENCHMARK(BM_PartitionDp)->Arg(128)->Arg(512)->Arg(1024);

void BM_PartitionGreedy(benchmark::State& state) {
    const auto blocks = static_cast<std::size_t>(state.range(0));
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = blocks * 256, .num_accesses = 50000, .write_fraction = 0.3,
                 .seed = 1},
        .num_hotspots = 8,
        .hotspot_bytes = 1024,
        .hot_fraction = 0.9,
    });
    const BlockProfile profile = BlockProfile::from_trace(trace, 256);
    for (auto _ : state) {
        const auto sol = solve_partition_greedy(profile, {8}, {});
        benchmark::DoNotOptimize(sol.energy.total());
    }
}
BENCHMARK(BM_PartitionGreedy)->Arg(1024)->Arg(4096);

void BM_FrequencyClustering(benchmark::State& state) {
    const MemTrace trace = uniform_trace({.span_bytes = 256 * 1024, .num_accesses = 100000,
                                          .write_fraction = 0.3, .seed = 2});
    const BlockProfile profile = BlockProfile::from_trace(trace, 256);
    for (auto _ : state) {
        const AddressMap map = frequency_clustering(profile);
        benchmark::DoNotOptimize(map.num_blocks());
    }
}
BENCHMARK(BM_FrequencyClustering);

void BM_DiffCodecEncode(benchmark::State& state) {
    const DiffCodec codec;
    const auto words = smooth_word_stream(8, 0.8, 200, 3);
    const auto line = words_to_line(words);
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec.compressed_bits(line));
        bytes += line.size();
    }
    state.counters["bytes/s"] =
        benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DiffCodecEncode);

void BM_CacheSimulation(benchmark::State& state) {
    const MemTrace trace = uniform_trace({.span_bytes = 64 * 1024, .num_accesses = 100000,
                                          .write_fraction = 0.3, .seed = 4});
    const auto addrs = trace.addrs();
    const auto kinds = trace.kinds();
    std::uint64_t accesses = 0;
    for (auto _ : state) {
        CacheModel cache(CacheConfig{});
        for (std::size_t i = 0; i < trace.size(); ++i) cache.access(addrs[i], kinds[i]);
        accesses += trace.size();
        benchmark::DoNotOptimize(cache.stats().misses());
    }
    state.counters["accesses/s"] =
        benchmark::Counter(static_cast<double>(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheSimulation);

void BM_CoherentReplay(benchmark::State& state) {
    // The coherent multi-core machine end to end: 4 private L1s, 4 shared
    // L2 banks, MSI directory, round-robin replay of a producer-consumer
    // workload (heavy sharing, so the protocol paths are on the hot path).
    SyntheticSpec spec;
    spec.kind = SyntheticKind::ProducerConsumer;
    spec.base.span_bytes = 64 * 1024;
    spec.base.num_accesses = 25000;
    spec.base.seed = 7;
    spec.cores = 4;
    spec.shared_bytes = 4096;
    spec.shared_fraction = 0.5;
    std::uint64_t accesses = 0;
    for (auto _ : state) {
        MultiCoreCacheSystem system(MultiCoreConfig{});
        std::vector<std::unique_ptr<TraceSource>> sources;
        for (const SyntheticSpec& core_spec : per_core_specs(spec))
            sources.push_back(std::make_unique<SyntheticSource>(core_spec));
        system.replay(sources);
        accesses += system.l1_totals().accesses();
        benchmark::DoNotOptimize(system.directory().stats().invalidations);
    }
    state.counters["accesses/s"] =
        benchmark::Counter(static_cast<double>(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoherentReplay);

// The tentpole paths of the trace-pipeline overhaul: single-pass windowed
// affinity over the SoA columns (sharded when the trace is long enough),
// the fused profile+affinity builder, and the incremental greedy affinity
// chain. Arg is the block count, which also decides dense vs CSR storage.
void BM_WindowedAffinity(benchmark::State& state) {
    const auto blocks = static_cast<std::size_t>(state.range(0));
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = blocks * 256, .num_accesses = 200000, .write_fraction = 0.3,
                 .seed = 5},
        .num_hotspots = 8,
        .hotspot_bytes = 1024,
        .hot_fraction = 0.9,
    });
    const BlockProfile profile = BlockProfile::from_trace(trace, 256);
    std::uint64_t accesses = 0;
    for (auto _ : state) {
        const AffinityMatrix aff = windowed_affinity(trace, profile, 8);
        accesses += trace.size();
        benchmark::DoNotOptimize(aff.total());
    }
    state.counters["accesses/s"] =
        benchmark::Counter(static_cast<double>(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WindowedAffinity)->Arg(512)->Arg(4096);

void BM_ProfileAndAffinity(benchmark::State& state) {
    const auto blocks = static_cast<std::size_t>(state.range(0));
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = blocks * 256, .num_accesses = 200000, .write_fraction = 0.3,
                 .seed = 5},
        .num_hotspots = 8,
        .hotspot_bytes = 1024,
        .hot_fraction = 0.9,
    });
    for (auto _ : state) {
        const ProfileAffinity pa = build_profile_and_affinity(trace, 256, 8);
        benchmark::DoNotOptimize(pa.affinity.total());
        benchmark::DoNotOptimize(pa.profile.total_accesses());
    }
}
BENCHMARK(BM_ProfileAndAffinity)->Arg(512)->Arg(4096);

void BM_AffinityClustering(benchmark::State& state) {
    const auto blocks = static_cast<std::size_t>(state.range(0));
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = blocks * 256, .num_accesses = 200000, .write_fraction = 0.3,
                 .seed = 5},
        .num_hotspots = 8,
        .hotspot_bytes = 1024,
        .hot_fraction = 0.9,
    });
    const ProfileAffinity pa = build_profile_and_affinity(trace, 256, 8);
    for (auto _ : state) {
        const AddressMap map = affinity_clustering(pa.profile, pa.affinity);
        benchmark::DoNotOptimize(map.num_blocks());
    }
}
BENCHMARK(BM_AffinityClustering)->Arg(512)->Arg(4096);

// Streaming-pipeline paths: the chunked replay driver feeding the profile
// builder from a generator source (no materialized trace), the fused
// streamed profile+affinity build, and the mmap zero-copy container read.
void BM_StreamReplay(benchmark::State& state) {
    const SyntheticSpec spec = parse_synthetic_spec(
        "hotspot,span=1048576,n=400000,seed=5,write=0.3,hotspots=8,"
        "hotspot-bytes=1024,hot-frac=0.9");
    std::uint64_t accesses = 0;
    for (auto _ : state) {
        SyntheticSource source(spec);
        const BlockProfile profile = BlockProfile::from_source(source, 256);
        accesses += profile.total_accesses();
        benchmark::DoNotOptimize(profile.total_accesses());
    }
    state.counters["accesses/s"] =
        benchmark::Counter(static_cast<double>(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StreamReplay);

void BM_StreamProfileAndAffinity(benchmark::State& state) {
    const SyntheticSpec spec = parse_synthetic_spec(
        "hotspot,span=1048576,n=200000,seed=5,write=0.3,hotspots=8,"
        "hotspot-bytes=1024,hot-frac=0.9");
    for (auto _ : state) {
        SyntheticSource source(spec);
        const ProfileAffinity pa = build_profile_and_affinity(source, 256, 8);
        benchmark::DoNotOptimize(pa.affinity.total());
        benchmark::DoNotOptimize(pa.profile.total_accesses());
    }
}
BENCHMARK(BM_StreamProfileAndAffinity);

void BM_MmapRead(benchmark::State& state) {
    const std::string path =
        "/tmp/memopt_bm_mmap_" + std::to_string(::getpid()) + ".mtsc";
    {
        SyntheticSource source(parse_synthetic_spec(
            "stride,span=1048576,n=400000,seed=7,write=0.3,stride=16"));
        write_trace_stream(path, source);
    }
    std::uint64_t accesses = 0;
    for (auto _ : state) {
        MmapBinarySource source(path);
        TraceChunk chunk;
        std::uint64_t sum = 0;
        while (source.next(chunk)) {
            for (std::size_t i = 0; i < chunk.size(); ++i) sum += chunk.addrs[i];
        }
        accesses += source.size();
        benchmark::DoNotOptimize(sum);
    }
    std::remove(path.c_str());
    state.counters["accesses/s"] =
        benchmark::Counter(static_cast<double>(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MmapRead);

void BM_TransformSearch(benchmark::State& state) {
    CpuConfig cfg;
    cfg.record_data_trace = false;
    cfg.record_fetch_stream = true;
    const RunResult run = Cpu(cfg).run(assemble(kernel_by_name("qsort").source));
    for (auto _ : state) {
        const auto r = search_transform(run.fetch_stream,
                                        {.max_gates = static_cast<std::size_t>(state.range(0))});
        benchmark::DoNotOptimize(r.encoded_transitions);
    }
}
BENCHMARK(BM_TransformSearch)->Arg(4)->Arg(16);

void BM_FullFlow(benchmark::State& state) {
    const RunResult run = Cpu(CpuConfig{}).run(assemble(kernel_by_name("histogram").source));
    FlowParams fp;
    fp.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(fp);
    for (auto _ : state) {
        const FlowComparison cmp = flow.compare(run.data_trace, ClusterMethod::Frequency);
        benchmark::DoNotOptimize(cmp.clustering_savings_pct());
    }
}
BENCHMARK(BM_FullFlow);

// The E1 clustering sweep (both methods over the whole suite) at 1 and N
// jobs: the wall-clock ratio between the two arg rows is the speedup the
// parallel execution layer delivers on this machine. Workloads come from
// the shared repository, so the suite is simulated once per process no
// matter how many benchmark repetitions run.
void BM_E1ClusteringSweep(benchmark::State& state) {
    const auto runs = memopt::bench::run_suite();
    std::vector<const MemTrace*> traces;
    traces.reserve(runs.size());
    for (const auto& run : runs) traces.push_back(&run->result.data_trace);
    FlowParams fp;
    fp.block_size = 256;
    fp.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(fp);
    const auto jobs = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const auto freq = flow.compare_all(traces, ClusterMethod::Frequency, jobs);
        const auto aff = flow.compare_all(traces, ClusterMethod::Affinity, jobs);
        benchmark::DoNotOptimize(freq.data());
        benchmark::DoNotOptimize(aff.data());
    }
    state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_E1ClusteringSweep)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The two-pass linter over the real src/ tree: the cold scan tokenizes and
// indexes every file; the warm scan replays the content-hash cache and only
// re-runs the (cheap) global pass. Their ratio is the incremental win the
// static-analysis CI job banks on. MEMOPT_LINT_SCAN_ROOT is the source tree
// (a compile definition — the bench binary can run from anywhere).
void BM_LintFullScan(benchmark::State& state) {
    lint::LintOptions options;
    options.root = MEMOPT_LINT_SCAN_ROOT;
    options.paths = {"src"};
    for (auto _ : state) {
        const lint::LintReport report = run_lint(options);
        benchmark::DoNotOptimize(report.findings.size());
    }
}
BENCHMARK(BM_LintFullScan)->Unit(benchmark::kMillisecond);

void BM_LintWarmCache(benchmark::State& state) {
    const std::string cache =
        (std::filesystem::temp_directory_path() / "memopt_lint_bench.cache").string();
    lint::LintOptions options;
    options.root = MEMOPT_LINT_SCAN_ROOT;
    options.paths = {"src"};
    options.cache_path = cache;
    run_lint(options);  // prime the cache once, outside the timed loop
    for (auto _ : state) {
        const lint::LintReport report = run_lint(options);
        benchmark::DoNotOptimize(report.files_from_cache);
    }
    std::remove(cache.c_str());
}
BENCHMARK(BM_LintWarmCache)->Unit(benchmark::kMillisecond);

/// Console reporter that also collects per-benchmark timings so the run
/// can be re-emitted in the repo-wide "memopt.bench.v1" schema. Times are
/// normalized to nanoseconds per iteration regardless of each benchmark's
/// display unit, which is what scripts/check_perf.py compares.
class CollectingReporter : public benchmark::ConsoleReporter {
public:
    struct Row {
        std::string name;
        double real_ns;
        double cpu_ns;
        std::uint64_t iterations;
    };
    std::vector<Row> rows;

    void ReportRuns(const std::vector<Run>& runs) override {
        for (const Run& run : runs) {
            if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
            const auto iters = static_cast<double>(run.iterations);
            rows.push_back(Row{run.benchmark_name(),
                               run.real_accumulated_time / iters * 1e9,
                               run.cpu_accumulated_time / iters * 1e9,
                               static_cast<std::uint64_t>(run.iterations)});
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

}  // namespace

// Custom entry point (instead of benchmark_main) so the run can also emit
// machine-readable results: with MEMOPT_JSON_DIR set, the collected rows
// are written to <dir>/BENCH_perf.json as a memopt.bench.v1 document — the
// same schema every E-bench emits — which scripts/check_perf.py diffs
// against bench/baselines/perf_baseline.json in the perf-regression CI job.
int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    CollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    memopt::bench::BenchReport report("BENCH_perf");
    for (const CollectingReporter::Row& row : reporter.rows) {
        report.add_row({{"benchmark", row.name},
                        {"real_time_ns", row.real_ns},
                        {"cpu_time_ns", row.cpu_ns},
                        {"iterations", row.iterations}});
    }
    report.summary({{"benchmarks", static_cast<std::uint64_t>(reporter.rows.size())}});
    report.finish(!reporter.rows.empty(), reporter.rows.empty()
                                              ? "no benchmark results collected"
                                              : "per-benchmark timings collected");
    return 0;
}
