// E2 — DATE'03 1B-1, figure: energy versus bank budget.
//
// Sweeps the maximum bank count and reports suite-average energy for plain
// partitioning and clustering+partitioning. The paper's qualitative shape:
// clustering helps most when few banks are available (the partitioner
// cannot isolate scattered hot blocks) and the gap narrows as the bank
// budget grows.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "support/csv.hpp"
#include "core/flow.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace memopt;

int main() {
    bench::print_header(
        "E2  energy vs bank budget, with and without clustering",
        "clustering gain is largest at small bank counts and shrinks as banks grow",
        "AR32 kernel suite; 256 B blocks; bank budget swept 1..16");

    const auto runs = bench::run_suite();
    std::vector<const MemTrace*> traces;
    traces.reserve(runs.size());
    for (const auto& run : runs) traces.push_back(&run->result.data_trace);
    TablePrinter table({"max banks", "partitioned avg [nJ]", "clustered avg [nJ]",
                        "clustering savings [%]"});
    std::vector<double> gains;
    bench::BenchReport report("e2_bank_sweep");
    auto csv = bench::csv_sink("e2_bank_sweep");
    std::optional<CsvWriter> csv_writer;
    if (csv) {
        csv_writer.emplace(*csv);
        csv_writer->write_row({"max_banks", "partitioned_nj", "clustered_nj", "savings_pct"});
    }

    for (std::size_t banks : {1, 2, 3, 4, 6, 8, 12, 16}) {
        FlowParams fp;
        fp.block_size = 256;
        fp.constraints.max_banks = banks;
        const MemoryOptimizationFlow flow(fp);
        Accumulator part;
        Accumulator clus;
        for (const FlowComparison& cmp : flow.compare_all(traces, ClusterMethod::Frequency)) {
            part.add(cmp.partitioned.energy.total());
            clus.add(cmp.clustered.energy.total());
        }
        const double savings = percent_savings(part.mean(), clus.mean());
        gains.push_back(savings);
        table.add_row({format("%zu", banks), format_fixed(part.mean() / 1e3, 1),
                       format_fixed(clus.mean() / 1e3, 1), format_fixed(savings, 1)});
        if (csv_writer)
            csv_writer->write_row_numeric(format("%zu", banks),
                                          {part.mean() / 1e3, clus.mean() / 1e3, savings});
        report.add_row({{"max_banks", static_cast<std::uint64_t>(banks)},
                        {"partitioned_nj", part.mean() / 1e3},
                        {"clustered_nj", clus.mean() / 1e3},
                        {"savings_pct", savings}});
    }
    table.print(std::cout);

    // Shape: the savings series should be (weakly) larger at small budgets
    // than at the largest budget, and ~0 at one bank (nothing to isolate).
    const bool shape = gains[1] > gains.back() && gains[2] > gains.back() &&
                       std::abs(gains.front()) < 5.0;
    std::printf("\n");
    report.finish(shape, "clustering gain decays with bank budget "
                         "(few banks -> clustering critical; many banks -> partitioner "
                         "can isolate hotspots by itself)");
    return 0;
}
