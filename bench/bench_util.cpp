#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/assert.hpp"

namespace memopt::bench {

namespace {

std::optional<std::string> dir_path(const char* env_var, const std::string& name,
                                    const std::string& extension) {
    const char* dir = std::getenv(env_var);
    if (dir == nullptr || *dir == '\0') return std::nullopt;
    return std::string(dir) + "/" + name + "." + extension;
}

std::optional<std::ofstream> dir_sink(const char* env_var, const std::string& name,
                                      const std::string& extension) {
    const auto path = dir_path(env_var, name, extension);
    if (!path) return std::nullopt;
    std::ofstream os(*path);
    require(os.is_open(), std::string(env_var) + " sink: cannot create '" + *path + "'");
    std::printf("(figure data -> %s)\n", path->c_str());
    return os;
}

}  // namespace

std::vector<KernelRunPtr> run_suite(bool fetch) {
    return WorkloadRepository::instance().suite(fetch);
}

void print_header(const std::string& experiment, const std::string& paper_claim,
                  const std::string& setup) {
    std::printf("================================================================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("paper claim : %s\n", paper_claim.c_str());
    std::printf("setup       : %s\n", setup.c_str());
    std::printf("================================================================\n");
}

void print_shape(bool ok, const std::string& message) {
    std::printf("SHAPE %s: %s\n", ok ? "ok" : "WARN", message.c_str());
}

std::optional<std::ofstream> csv_sink(const std::string& name) {
    return dir_sink("MEMOPT_CSV_DIR", name, "csv");
}

std::optional<std::ofstream> json_sink(const std::string& name) {
    return dir_sink("MEMOPT_JSON_DIR", name, "json");
}

std::optional<std::string> json_path(const std::string& name) {
    return dir_path("MEMOPT_JSON_DIR", name, "json");
}

}  // namespace memopt::bench
