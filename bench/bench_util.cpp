#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/assert.hpp"

namespace memopt::bench {

std::vector<KernelRun> run_suite(bool fetch) {
    std::vector<KernelRun> runs;
    CpuConfig config;
    config.record_fetch_stream = fetch;
    for (const Kernel& kernel : kernel_suite()) {
        KernelRun run;
        run.name = kernel.name;
        run.program = assemble(kernel.source);
        run.result = Cpu(config).run(run.program);
        runs.push_back(std::move(run));
    }
    return runs;
}

void print_header(const std::string& experiment, const std::string& paper_claim,
                  const std::string& setup) {
    std::printf("================================================================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("paper claim : %s\n", paper_claim.c_str());
    std::printf("setup       : %s\n", setup.c_str());
    std::printf("================================================================\n");
}

void print_shape(bool ok, const std::string& message) {
    std::printf("SHAPE %s: %s\n", ok ? "ok" : "WARN", message.c_str());
}

std::optional<std::ofstream> csv_sink(const std::string& name) {
    const char* dir = std::getenv("MEMOPT_CSV_DIR");
    if (dir == nullptr || *dir == '\0') return std::nullopt;
    const std::string path = std::string(dir) + "/" + name + ".csv";
    std::ofstream os(path);
    require(os.is_open(), "csv_sink: cannot create '" + path + "'");
    std::printf("(figure data -> %s)\n", path.c_str());
    return os;
}

}  // namespace memopt::bench
