#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/assert.hpp"
#include "support/metrics.hpp"

namespace memopt::bench {

namespace {

std::optional<std::string> dir_path(const char* env_var, const std::string& name,
                                    const std::string& extension) {
    const char* dir = std::getenv(env_var);
    if (dir == nullptr || *dir == '\0') return std::nullopt;
    return std::string(dir) + "/" + name + "." + extension;
}

std::optional<AtomicOstream> dir_sink(const char* env_var, const std::string& name,
                                      const std::string& extension) {
    const auto path = dir_path(env_var, name, extension);
    if (!path) return std::nullopt;
    AtomicOstream os;
    if (!os.open_staged(*path)) {
        // A missing sink directory must not kill the bench, but a silently
        // dropped BENCH_* export is undiagnosable — name the path.
        std::fprintf(stderr, "memopt: warning: %s sink: cannot create '%s'; export dropped\n",
                     env_var, path->c_str());
        return std::nullopt;
    }
    std::printf("(figure data -> %s)\n", path->c_str());
    return os;
}

}  // namespace

std::vector<KernelRunPtr> run_suite(bool fetch) {
    return WorkloadRepository::instance().suite(fetch);
}

void print_header(const std::string& experiment, const std::string& paper_claim,
                  const std::string& setup) {
    std::printf("================================================================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("paper claim : %s\n", paper_claim.c_str());
    std::printf("setup       : %s\n", setup.c_str());
    std::printf("================================================================\n");
}

void print_shape(bool ok, const std::string& message) {
    std::printf("SHAPE %s: %s\n", ok ? "ok" : "WARN", message.c_str());
}

std::optional<AtomicOstream> csv_sink(const std::string& name) {
    return dir_sink("MEMOPT_CSV_DIR", name, "csv");
}

std::optional<AtomicOstream> json_sink(const std::string& name) {
    return dir_sink("MEMOPT_JSON_DIR", name, "json");
}

std::optional<std::string> json_path(const std::string& name) {
    return dir_path("MEMOPT_JSON_DIR", name, "json");
}

BenchReport::BenchReport(const std::string& name) {
    const auto path = dir_path("MEMOPT_JSON_DIR", name, "json");
    if (!path) return;
    path_ = *path;
    if (!out_.open_staged(path_)) {
        std::fprintf(stderr,
                     "memopt: warning: MEMOPT_JSON_DIR sink: cannot create '%s'; "
                     "export dropped\n",
                     path_.c_str());
        return;
    }
    writer_.emplace(out_);
    writer_->begin_object();
    writer_->member("schema", "memopt.bench.v1");
    writer_->member("experiment", name);
    writer_->key("rows").begin_array();
    rows_open_ = true;
}

BenchReport::~BenchReport() {
    // A bench that exits without finish() never completed its document:
    // discard the staged temp file so no truncated JSON appears under the
    // final name (the destructor must not throw either way).
    if (!finished_) out_.discard();
}

void BenchReport::write_fields(std::initializer_list<Field> fields) {
    writer_->begin_object();
    for (const Field& field : fields) {
        writer_->key(field.first);
        std::visit([&](const auto& value) { writer_->value(value); }, field.second.v);
    }
    writer_->end_object();
}

void BenchReport::close_rows() {
    if (rows_open_) {
        writer_->end_array();
        rows_open_ = false;
    }
}

void BenchReport::add_row(std::initializer_list<Field> fields) {
    if (!active()) return;
    MEMOPT_ASSERT_MSG(rows_open_, "BenchReport::add_row after summary()/finish()");
    write_fields(fields);
}

void BenchReport::summary(std::initializer_list<Field> fields) {
    if (!active()) return;
    close_rows();
    writer_->key("summary");
    write_fields(fields);
}

void BenchReport::finish(bool shape_ok, const std::string& message) {
    print_shape(shape_ok, message);
    if (!active() || finished_) return;
    close_rows();
    writer_->key("shape").begin_object();
    writer_->member("ok", shape_ok);
    writer_->member("message", message);
    writer_->end_object();
    writer_->key("metrics");
    MetricsRegistry::instance().snapshot().to_json(*writer_);
    writer_->end_object();
    MEMOPT_ASSERT_MSG(writer_->complete(), "BenchReport: unbalanced JSON document");
    out_ << '\n';
    require(out_.commit(), "MEMOPT_JSON_DIR sink: failed writing '" + path_ + "'");
    std::printf("(figure data -> %s)\n", path_.c_str());
    finished_ = true;
}

}  // namespace memopt::bench
