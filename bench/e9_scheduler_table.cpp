// E9 — DATE'03 1B-4, table: application energy of multi-context
// reconfigurable applications under the data scheduler, versus a naive
// static placement, including dynamic-reconfiguration (context) energy.
// The paper claims improved application energy and reduced reconfiguration
// energy from suitable data scheduling.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/app_builder.hpp"
#include "sched/scheduler.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace memopt;

int main() {
    bench::print_header(
        "E9  data scheduling for multi-context reconfigurable architectures",
        "data scheduler reduces application energy incl. dynamic reconfiguration",
        "8 generated multimedia applications (6 buffers, 8 phases, 4 contexts); "
        "2 KiB L1 / 8 KiB L2 scratchpads; 2 context slots");

    const ReconfArch arch;
    TablePrinter table({"application", "naive [uJ]", "greedy [uJ]", "optimal [uJ]",
                        "greedy savings [%]", "optimal savings [%]", "context savings [%]"});
    bench::BenchReport report("e9_scheduler_table");
    Accumulator greedy_acc;
    Accumulator optimal_acc;

    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        AppGenParams params;
        params.seed = seed;
        const Application app = generate_application(params);
        const auto e_naive = evaluate_schedule(app, arch, naive_schedule(app, arch));
        const auto e_greedy = evaluate_schedule(app, arch, greedy_schedule(app, arch));
        const auto e_opt = evaluate_schedule(app, arch, optimal_schedule(app, arch));
        const double gs = percent_savings(e_naive.total(), e_greedy.total());
        const double os = percent_savings(e_naive.total(), e_opt.total());
        const double cs = percent_savings(e_naive.component("context_load"),
                                          e_opt.component("context_load"));
        greedy_acc.add(gs);
        optimal_acc.add(os);
        table.add_row({format("app%llu", (unsigned long long)seed),
                       format_fixed(e_naive.total() / 1e6, 2),
                       format_fixed(e_greedy.total() / 1e6, 2),
                       format_fixed(e_opt.total() / 1e6, 2), format_fixed(gs, 1),
                       format_fixed(os, 1), format_fixed(cs, 1)});
        report.add_row({{"application", format("app%llu", (unsigned long long)seed)},
                        {"naive_uj", e_naive.total() / 1e6},
                        {"greedy_uj", e_greedy.total() / 1e6},
                        {"optimal_uj", e_opt.total() / 1e6},
                        {"greedy_savings_pct", gs},
                        {"optimal_savings_pct", os},
                        {"context_savings_pct", cs}});
    }
    table.print(std::cout);

    // Second table: a pipeline built from real AR32 kernels (data sets are
    // the measured assembler-symbol traffic of each kernel).
    std::puts("\n-- kernel-derived pipelines ------------------------------------");
    TablePrinter kernel_table({"pipeline", "naive [uJ]", "greedy [uJ]",
                               "greedy savings [%]"});
    const std::vector<std::vector<std::string>> pipelines = {
        {"fir", "biquad", "fft16"},
        {"conv3x3", "dither", "rle"},
        {"crc32", "histogram", "strsearch", "qsort"},
    };
    bool kernel_pipelines_win = true;
    for (const auto& names : pipelines) {
        const Application app = application_from_kernels(names);
        const double naive_pj =
            evaluate_schedule(app, arch, naive_schedule(app, arch)).total();
        const double greedy_pj =
            evaluate_schedule(app, arch, greedy_schedule(app, arch)).total();
        kernel_pipelines_win = kernel_pipelines_win && greedy_pj < naive_pj;
        std::string label;
        for (const std::string& n : names) label += (label.empty() ? "" : "+") + n;
        kernel_table.add_row({label, format_fixed(naive_pj / 1e6, 2),
                              format_fixed(greedy_pj / 1e6, 2),
                              format_fixed(percent_savings(naive_pj, greedy_pj), 1)});
        report.add_row({{"application", label},
                        {"naive_uj", naive_pj / 1e6},
                        {"greedy_uj", greedy_pj / 1e6},
                        {"greedy_savings_pct", percent_savings(naive_pj, greedy_pj)}});
    }
    kernel_table.print(std::cout);

    std::printf("\naverage savings (generated apps): greedy %.1f%%, optimal %.1f%%\n",
                greedy_acc.mean(), optimal_acc.mean());
    report.summary({{"avg_greedy_savings_pct", greedy_acc.mean()},
                    {"avg_optimal_savings_pct", optimal_acc.mean()}});
    report.finish(greedy_acc.min() > 0.0 && optimal_acc.mean() >= greedy_acc.mean() &&
                      kernel_pipelines_win,
                  "scheduling reduces energy on every generated application and on "
                  "every kernel-derived pipeline; the exact DP certifies the greedy "
                  "heuristic");
    return 0;
}
