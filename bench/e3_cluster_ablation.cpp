// E3 — 1B-1 ablation: sensitivity of address clustering to its two design
// knobs, (a) the profile block size (which sets the remap-table size) and
// (b) the remap-table energy itself. Not a single paper figure, but the
// design-space discussion of the paper: the block size trades remap cost
// against clustering precision.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "cluster/remap_cost.hpp"
#include "core/flow.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace memopt;

int main() {
    bench::print_header(
        "E3  clustering ablation: block size and remap-table cost",
        "clustering precision vs remap overhead trade-off (design discussion)",
        "AR32 kernel suite; <=4 banks; frequency clustering");

    const auto runs = bench::run_suite();
    std::vector<const MemTrace*> traces;
    traces.reserve(runs.size());
    for (const auto& run : runs) traces.push_back(&run->result.data_trace);

    bench::BenchReport report("e3_cluster_ablation");
    std::puts("\n-- (a) block-size sweep ----------------------------------------");
    TablePrinter block_table({"block size", "remap table [bits]", "avg clustering savings [%]",
                              "min [%]", "max [%]"});
    std::vector<double> avg_by_block;
    for (std::uint64_t block : {64, 128, 256, 512, 1024, 2048, 4096}) {
        FlowParams fp;
        fp.block_size = block;
        fp.constraints.max_banks = 4;
        const MemoryOptimizationFlow flow(fp);
        Accumulator acc;
        std::uint64_t table_bits = 0;
        for (const FlowComparison& cmp : flow.compare_all(traces, ClusterMethod::Frequency)) {
            acc.add(cmp.clustering_savings_pct());
            table_bits = RemapTableModel(cmp.clustered.map.num_blocks()).table_bits();
        }
        avg_by_block.push_back(acc.mean());
        block_table.add_row({format_bytes(block), format("%llu", (unsigned long long)table_bits),
                             format_fixed(acc.mean(), 1), format_fixed(acc.min(), 1),
                             format_fixed(acc.max(), 1)});
        report.add_row({{"axis", "block_bytes"},
                        {"value", static_cast<double>(block)},
                        {"remap_table_bits", table_bits},
                        {"avg_savings_pct", acc.mean()},
                        {"min_savings_pct", acc.min()},
                        {"max_savings_pct", acc.max()}});
    }
    block_table.print(std::cout);

    std::puts("\n-- (b) remap-energy sensitivity --------------------------------");
    TablePrinter remap_table({"remap cost multiplier", "avg clustering savings [%]"});
    std::vector<double> avg_by_cost;
    for (double mult : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
        FlowParams fp;
        fp.block_size = 256;
        fp.constraints.max_banks = 4;
        fp.remap.base_pj *= mult;
        fp.remap.per_index_bit_pj *= mult;
        fp.remap.per_entry_bit_pj *= mult;
        const MemoryOptimizationFlow flow(fp);
        Accumulator acc;
        for (const FlowComparison& cmp : flow.compare_all(traces, ClusterMethod::Frequency))
            acc.add(cmp.clustering_savings_pct());
        avg_by_cost.push_back(acc.mean());
        remap_table.add_row({format_fixed(mult, 1), format_fixed(acc.mean(), 1)});
        report.add_row({{"axis", "remap_cost_mult"},
                        {"value", mult},
                        {"avg_savings_pct", acc.mean()}});
    }
    remap_table.print(std::cout);

    // Shape: fine blocks beat very coarse blocks; savings decay
    // monotonically as the remap table gets more expensive.
    bool remap_monotone = true;
    for (std::size_t i = 1; i < avg_by_cost.size(); ++i)
        remap_monotone = remap_monotone && avg_by_cost[i] <= avg_by_cost[i - 1] + 1e-9;
    const bool shape = avg_by_block[2] > avg_by_block.back() && remap_monotone;
    std::printf("\n");
    report.finish(shape,
                  "finer blocks preserve clustering precision; savings decay "
                  "monotonically with remap-table energy");
    return 0;
}
