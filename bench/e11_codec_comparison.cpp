// E11 — extension ablation: the differential codec against alternative
// line-compression schemes (zero-run, base-delta-immediate, and the
// trained frequent-value dictionary the papers argue against).
//
// Metric: compression ratio on the actual write-back line population of
// each kernel (collected from the compressed-memory simulation geometry),
// plus the resulting memory-path energy on the VLIW platform.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "compress/bdi_codec.hpp"
#include "compress/dictionary_codec.hpp"
#include "compress/diff_codec.hpp"
#include "compress/platform.hpp"
#include "compress/zero_run.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace memopt;

int main() {
    bench::print_header(
        "E11  codec comparison: differential vs zero-run vs BDI vs dictionary",
        "extension: the per-word-tagged differential scheme dominates uniform-width "
        "and dictionary schemes on embedded data",
        "AR32 kernel suite; VLIW platform; dictionary trained per kernel on its own "
        "write values (16 entries)");

    const PlatformModel platform = vliw_platform();
    const DiffCodec diff;
    const ZeroRunCodec zero_run;
    const BdiCodec bdi;

    TablePrinter table({"benchmark", "diff ratio", "zero-run ratio", "bdi ratio",
                        "dict ratio", "best"});
    Accumulator diff_acc;
    Accumulator zr_acc;
    Accumulator bdi_acc;
    Accumulator dict_acc;

    for (const auto& run : bench::run_suite()) {
        const DictionaryCodec dict = DictionaryCodec::train(run.result.data_trace, 16);
        struct Entry {
            const char* label;
            const LineCodec* codec;
            double ratio;
        };
        std::vector<Entry> entries = {{"diff", &diff, 0.0},
                                      {"zero-run", &zero_run, 0.0},
                                      {"bdi", &bdi, 0.0},
                                      {"dict", &dict, 0.0}};
        for (Entry& e : entries) {
            const auto report =
                CompressedMemorySim(platform.config, e.codec)
                    .run(run.result.data_trace, run.program.data, run.program.data_base);
            e.ratio = report.traffic_ratio();
        }
        diff_acc.add(entries[0].ratio);
        zr_acc.add(entries[1].ratio);
        bdi_acc.add(entries[2].ratio);
        dict_acc.add(entries[3].ratio);
        const Entry* best = &entries[0];
        for (const Entry& e : entries)
            if (e.ratio < best->ratio) best = &e;
        table.add_row({run.name, format_fixed(entries[0].ratio, 3),
                       format_fixed(entries[1].ratio, 3), format_fixed(entries[2].ratio, 3),
                       format_fixed(entries[3].ratio, 3), best->label});
    }
    table.add_separator();
    table.add_row({"average", format_fixed(diff_acc.mean(), 3), format_fixed(zr_acc.mean(), 3),
                   format_fixed(bdi_acc.mean(), 3), format_fixed(dict_acc.mean(), 3), ""});
    table.print(std::cout);

    std::printf("\n(lower traffic ratio is better; 1.000 = incompressible)\n");
    bench::print_shape(diff_acc.mean() <= zr_acc.mean() && diff_acc.mean() <= bdi_acc.mean() &&
                           diff_acc.mean() <= dict_acc.mean(),
                       "the differential codec achieves the best average traffic ratio "
                       "across the suite");
    return 0;
}
