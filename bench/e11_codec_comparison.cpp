// E11 — extension ablation: the differential codec against alternative
// line-compression schemes (zero-run, base-delta-immediate, and the
// trained frequent-value dictionary the papers argue against).
//
// Metric: compression ratio on the actual write-back line population of
// each kernel (collected from the compressed-memory simulation geometry),
// plus the resulting memory-path energy on the VLIW platform.
#include <array>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "support/parallel.hpp"
#include "compress/bdi_codec.hpp"
#include "compress/dictionary_codec.hpp"
#include "compress/diff_codec.hpp"
#include "compress/platform.hpp"
#include "compress/zero_run.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace memopt;

int main() {
    bench::print_header(
        "E11  codec comparison: differential vs zero-run vs BDI vs dictionary",
        "extension: the per-word-tagged differential scheme dominates uniform-width "
        "and dictionary schemes on embedded data",
        "AR32 kernel suite; VLIW platform; dictionary trained per kernel on its own "
        "write values (16 entries)");

    const PlatformModel platform = vliw_platform();
    const DiffCodec diff;
    const ZeroRunCodec zero_run;
    const BdiCodec bdi;

    TablePrinter table({"benchmark", "diff ratio", "zero-run ratio", "bdi ratio",
                        "dict ratio", "best"});
    bench::BenchReport report("e11_codec_comparison");
    Accumulator diff_acc;
    Accumulator zr_acc;
    Accumulator bdi_acc;
    Accumulator dict_acc;

    // Candidate evaluation — dictionary training plus four compressed-
    // memory simulations per kernel — is independent across kernels; fan it
    // out over the parallel runtime (MEMOPT_JOBS) and fold the ordered rows
    // into the table and accumulators serially.
    struct Row {
        std::string name;
        std::array<double, 4> ratios;  // diff, zero-run, bdi, dict
    };
    const auto rows = parallel_map(bench::run_suite(), [&](const bench::KernelRunPtr& run) {
        const DictionaryCodec dict = DictionaryCodec::train(run->result.data_trace, 16);
        const std::array<const LineCodec*, 4> codecs = {&diff, &zero_run, &bdi, &dict};
        Row row;
        row.name = run->name;
        for (std::size_t c = 0; c < codecs.size(); ++c) {
            const auto report =
                CompressedMemorySim(platform.config, codecs[c])
                    .run(run->result.data_trace, run->program.data, run->program.data_base);
            row.ratios[c] = report.traffic_ratio();
        }
        return row;
    });

    static constexpr std::array<const char*, 4> kLabels = {"diff", "zero-run", "bdi", "dict"};
    for (const Row& row : rows) {
        diff_acc.add(row.ratios[0]);
        zr_acc.add(row.ratios[1]);
        bdi_acc.add(row.ratios[2]);
        dict_acc.add(row.ratios[3]);
        std::size_t best = 0;
        for (std::size_t c = 1; c < row.ratios.size(); ++c)
            if (row.ratios[c] < row.ratios[best]) best = c;
        table.add_row({row.name, format_fixed(row.ratios[0], 3),
                       format_fixed(row.ratios[1], 3), format_fixed(row.ratios[2], 3),
                       format_fixed(row.ratios[3], 3), kLabels[best]});
        report.add_row({{"benchmark", row.name},
                        {"diff_ratio", row.ratios[0]},
                        {"zero_run_ratio", row.ratios[1]},
                        {"bdi_ratio", row.ratios[2]},
                        {"dict_ratio", row.ratios[3]},
                        {"best", kLabels[best]}});
    }
    table.add_separator();
    table.add_row({"average", format_fixed(diff_acc.mean(), 3), format_fixed(zr_acc.mean(), 3),
                   format_fixed(bdi_acc.mean(), 3), format_fixed(dict_acc.mean(), 3), ""});
    table.print(std::cout);

    std::printf("\n(lower traffic ratio is better; 1.000 = incompressible)\n");
    report.summary({{"avg_diff_ratio", diff_acc.mean()},
                    {"avg_zero_run_ratio", zr_acc.mean()},
                    {"avg_bdi_ratio", bdi_acc.mean()},
                    {"avg_dict_ratio", dict_acc.mean()}});
    report.finish(diff_acc.mean() <= zr_acc.mean() && diff_acc.mean() <= bdi_acc.mean() &&
                      diff_acc.mean() <= dict_acc.mean(),
                  "the differential codec achieves the best average traffic ratio "
                  "across the suite");
    return 0;
}
