// E12 — fault-injection campaign: protection strength vs silent corruption
// and energy on the kernel suite's data images.
//
// Metric: Monte-Carlo bit-flip campaigns over the stored lines (raw and
// diff-compressed) under none/parity/SECDED protection. Stronger codes must
// deliver monotonically fewer silent corruptions; the price is check-bit
// storage, encode/check logic energy, and re-fetches of detected lines.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "compress/diff_codec.hpp"
#include "fault/campaign.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace memopt;

int main() {
    bench::print_header(
        "E12  fault campaign: none vs parity vs SECDED on stored lines",
        "robustness extension: SECDED eliminates nearly all silent corruption that "
        "unprotected (and parity-protected) storage lets through, at a bounded "
        "energy overhead",
        "AR32 kernel suite data images; 32 B lines, raw and diff-compressed "
        "storage; per-bit flip rate 1e-4; 96 trials, fixed seed");

    // One corpus: every line of every kernel's data image.
    std::vector<std::vector<std::uint8_t>> corpus;
    for (const bench::KernelRunPtr& run : bench::run_suite()) {
        if (run->program.data.empty()) continue;
        auto lines = line_corpus(run->program.data, 32);
        for (auto& line : lines) corpus.push_back(std::move(line));
    }

    const DiffCodec diff;
    struct Storage {
        const char* name;
        const LineCodec* codec;
    };
    const Storage storages[] = {{"raw", nullptr}, {"diff", &diff}};
    const ProtectionScheme schemes[] = {ProtectionScheme::None, ProtectionScheme::Parity,
                                        ProtectionScheme::Secded};

    TablePrinter table({"storage", "protection", "check b/w", "injected", "corrected",
                        "degraded rate", "silent rate", "overhead [%]"});
    bench::BenchReport report("e12_fault_campaign");

    bool residual_monotone = true;
    bool secded_corrects = false;
    bool none_never_corrects = true;
    for (const Storage& storage : storages) {
        double prev_residual = -1.0;  // walked strongest-to-weakest below
        double residuals[3] = {0, 0, 0};
        for (std::size_t s = 0; s < 3; ++s) {
            FaultCampaignConfig config;
            config.seed = 42;
            config.trials = 96;
            config.bit_flip_rate = 1e-4;
            config.protection = schemes[s];
            config.codec = storage.codec;
            config.line_bytes = 32;
            const FaultCampaignResult r = run_campaign(config, corpus);
            residuals[s] = r.residual_corruption_rate();
            if (schemes[s] == ProtectionScheme::Secded && r.corrected > 0)
                secded_corrects = true;
            if (schemes[s] == ProtectionScheme::None && r.corrected != 0)
                none_never_corrects = false;
            table.add_row({storage.name, protection_name(schemes[s]),
                           format("%u", protection_check_bits(schemes[s], 64)),
                           format("%llu", (unsigned long long)r.faults_injected),
                           format("%llu", (unsigned long long)r.corrected),
                           format("%.3e", r.degraded_rate()),
                           format("%.3e", r.residual_corruption_rate()),
                           format_fixed(100.0 * r.energy_overhead(), 2)});
            report.add_row({{"storage", storage.name},
                            {"protection", protection_name(schemes[s])},
                            {"check_bits_per_word", protection_check_bits(schemes[s], 64)},
                            {"faults_injected", r.faults_injected},
                            {"corrected", r.corrected},
                            {"degraded_rate", r.degraded_rate()},
                            {"residual_corruption_rate", r.residual_corruption_rate()},
                            {"energy_overhead", r.energy_overhead()}});
        }
        // none >= parity >= secded: each protection upgrade must not
        // increase the silent corruption that reaches the consumer.
        prev_residual = residuals[2];  // secded
        for (int s = 1; s >= 0; --s) {
            if (residuals[s] < prev_residual) residual_monotone = false;
            prev_residual = residuals[s];
        }
        table.add_separator();
    }
    table.print(std::cout);
    std::printf("\n(%zu lines per campaign; overhead = (protection + refetch) / "
                "base access energy)\n",
                corpus.size());

    const bool ok = residual_monotone && secded_corrects && none_never_corrects;
    report.finish(ok,
                  "silent corruption decreases monotonically with protection strength "
                  "(none >= parity >= SECDED) on both raw and compressed storage");
    return 0;
}
