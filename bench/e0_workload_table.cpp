// E0 — workload characterization (the "Table 1" every systems paper has).
//
// One row per bundled kernel: dynamic instruction count, data accesses,
// write ratio, touched footprint, profile skew (fraction of accesses in the
// 8 hottest 256 B blocks), spatial locality of the profile, and the
// write-back compressibility of its data under the diff codec. These are
// the workload properties every later experiment builds on.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "compress/diff_codec.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"
#include "trace/profile.hpp"

using namespace memopt;

namespace {

/// Average compression ratio of the kernel's final data image, taken over
/// 32-byte lines (a static proxy for write-back compressibility).
double image_compressibility(const std::vector<std::uint8_t>& data) {
    const DiffCodec codec;
    if (data.size() < 32) return 1.0;
    std::uint64_t raw_bits = 0;
    std::uint64_t coded_bits = 0;
    for (std::size_t off = 0; off + 32 <= data.size(); off += 32) {
        const std::span<const std::uint8_t> line(&data[off], 32);
        raw_bits += 256;
        coded_bits += codec.compressed_bits(line);
    }
    return static_cast<double>(coded_bits) / static_cast<double>(raw_bits);
}

}  // namespace

int main() {
    bench::print_header(
        "E0  workload characterization of the AR32 kernel suite",
        "(context table — no paper counterpart; the properties the experiments exploit)",
        "data profiles at 256 B blocks; image compressibility over 32 B lines");

    TablePrinter table({"kernel", "instructions", "data accs", "write [%]", "footprint",
                        "hot-8 [%]", "locality", "image ratio"});
    bench::BenchReport report("e0_workload_table");
    std::size_t rows = 0;
    bool sane = true;

    for (const auto& run_ptr : bench::run_suite()) {
        const bench::KernelRun& run = *run_ptr;
        const auto& trace = run.result.data_trace;
        const BlockProfile profile = BlockProfile::from_trace(trace, 256);
        std::uint64_t touched_blocks = 0;
        for (std::size_t b = 0; b < profile.num_blocks(); ++b)
            touched_blocks += profile.counts(b).total() > 0;
        const double write_pct =
            100.0 * static_cast<double>(trace.write_count()) / static_cast<double>(trace.size());
        table.add_row({run.name, format("%llu", (unsigned long long)run.result.instructions),
                       format("%zu", trace.size()), format_fixed(write_pct, 1),
                       format_bytes(touched_blocks * 256),
                       format_fixed(100.0 * profile.hot_fraction(8), 1),
                       format_fixed(profile.spatial_locality(), 2),
                       format_fixed(image_compressibility(run.program.data), 2)});
        report.add_row({{"kernel", run.name},
                        {"instructions", run.result.instructions},
                        {"data_accesses", static_cast<std::uint64_t>(trace.size())},
                        {"write_pct", write_pct},
                        {"footprint_bytes", touched_blocks * 256},
                        {"hot8_pct", 100.0 * profile.hot_fraction(8)},
                        {"locality", profile.spatial_locality()},
                        {"image_ratio", image_compressibility(run.program.data)}});
        ++rows;
        sane = sane && run.result.instructions > 1000 && !trace.empty() &&
               profile.hot_fraction(8) > 0.05;
    }
    table.print(std::cout);

    std::printf("\n(hot-8: accesses in the 8 hottest blocks; locality: 1 = hot blocks "
                "contiguous; image ratio: 1 = incompressible)\n");
    report.finish(rows == 12 && sane,
                  "all twelve kernels show skewed profiles — the property the "
                  "partitioning and clustering experiments exploit");
    return 0;
}
