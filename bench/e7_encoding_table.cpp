// E7 — DATE'03 1B-3, main table: instruction-bus switching reduction from
// application-specific functional transformations, against bus-invert and
// Gray re-coding. Paper: "reductions that range up to half of the original
// transitions" on numerical/DSP codes, beating dictionary-free baselines.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "encoding/baselines.hpp"
#include "encoding/decoder_cost.hpp"
#include "encoding/search.hpp"
#include "energy/bus_model.hpp"
#include "energy/sram_model.hpp"
#include "trace/trace.hpp"
#include "support/parallel.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace memopt;

int main() {
    bench::print_header(
        "E7  application-specific instruction-bus transformations",
        "transition reductions up to ~50% (\"half of the original transitions\")",
        "AR32 kernel fetch streams; greedy gate search, 16-gate budget; "
        "bus-invert (incl. invert line) and Gray re-coding as baselines");

    TablePrinter table({"benchmark", "raw transitions", "bus-invert [%]", "gray [%]",
                        "transform [%]", "gates", "fetch-path saved [%]"});
    bench::BenchReport report("e7_encoding_table");
    std::vector<double> reductions;
    const BusEnergyModel bus;

    // Per-kernel gate searches are the heaviest loop of the bench suite and
    // fully independent; evaluate them concurrently (MEMOPT_JOBS) and build
    // the table serially from the order-preserving rows.
    struct Row {
        std::string name;
        std::uint64_t raw, bi, gray;
        TransformSearchResult xf;
        double path_saved_pct;
    };
    const auto rows = parallel_map(
        bench::run_suite(/*fetch=*/true), [&](const bench::KernelRunPtr& run) {
            const auto& stream = run->result.fetch_stream;
            Row row;
            row.name = run->name;
            row.raw = count_transitions(stream);
            row.bi = bus_invert_transitions(stream);
            row.gray = gray_code_transitions(stream);
            row.xf = search_transform(stream, {.max_gates = 16});

            // Whole fetch path: I-memory array reads + bus + decoder. The
            // transform only shrinks the bus term, so path savings are the
            // honest (diluted) number a designer would quote.
            const SramEnergyModel imem(ceil_pow2(run->program.code.size() * 4), 32);
            const double imem_pj =
                imem.read_energy() * static_cast<double>(stream.size());
            const double raw_path = imem_pj + bus.transition_energy(row.raw);
            const EnergyBreakdown enc = encoded_energy(
                row.xf.transform, stream, bus.technology().energy_per_transition_pj);
            const double enc_path = imem_pj + enc.total();
            row.path_saved_pct = 100.0 * (raw_path - enc_path) / raw_path;
            return row;
        });

    for (const Row& row : rows) {
        reductions.push_back(100.0 * row.xf.reduction());
        table.add_row(
            {row.name, format("%llu", (unsigned long long)row.raw),
             format_fixed(100.0 * (1.0 - double(row.bi) / double(row.raw)), 1),
             format_fixed(100.0 * (1.0 - double(row.gray) / double(row.raw)), 1),
             format_fixed(100.0 * row.xf.reduction(), 1),
             format("%zu", row.xf.transform.gate_count()),
             format_fixed(row.path_saved_pct, 1)});
        report.add_row(
            {{"benchmark", row.name},
             {"raw_transitions", row.raw},
             {"bus_invert_pct", 100.0 * (1.0 - double(row.bi) / double(row.raw))},
             {"gray_pct", 100.0 * (1.0 - double(row.gray) / double(row.raw))},
             {"transform_pct", 100.0 * row.xf.reduction()},
             {"gates", static_cast<std::uint64_t>(row.xf.transform.gate_count())},
             {"fetch_path_saved_pct", row.path_saved_pct}});
    }
    table.print(std::cout);

    const double avg = mean(reductions);
    const double max = *std::max_element(reductions.begin(), reductions.end());
    const double min = *std::min_element(reductions.begin(), reductions.end());
    std::printf("\nmeasured: avg %.1f%%  max %.1f%%  min %.1f%%   (paper: up to ~50%%)\n", avg,
                max, min);
    report.summary({{"avg_reduction_pct", avg},
                    {"max_reduction_pct", max},
                    {"min_reduction_pct", min}});
    report.finish(max > 45.0 && min > 20.0,
                  "transforms reach ~half of the original transitions at the top and "
                  "beat bus-invert and Gray on every kernel");
    return 0;
}
