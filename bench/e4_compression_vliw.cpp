// E4 — DATE'03 1B-2, table: per-benchmark energy savings from write-back
// data compression on the Lx-ST200-class VLIW platform (paper: 10-22%).
#include "compression_table.hpp"

int main() {
    memopt::bench::run_compression_table(
        memopt::vliw_platform(), "E4", "e4_compression_vliw",
        "10-22% energy savings on the Lx-ST200 VLIW platform (Ptolemy/MediaBench)", 10.0, 22.0);
    return 0;
}
