#!/usr/bin/env python3
"""Perf-regression gate: diff a perf_micro run against checked-in baselines.

Usage:
    python3 scripts/check_perf.py <BENCH_perf.json>            # gate (CI)
    python3 scripts/check_perf.py <BENCH_perf.json> --update   # refresh baselines
    python3 scripts/check_perf.py <BENCH_perf.json> --baseline <file> \
        --tolerance-pct 25

The input is the memopt.bench.v1 document perf_micro writes when run with
MEMOPT_JSON_DIR set; each row carries {benchmark, real_time_ns, cpu_time_ns,
iterations}. The baseline (bench/baselines/perf_baseline.json) stores one
reference real_time_ns per benchmark name.

A benchmark FAILS when its per-iteration real time exceeds the baseline by
more than the tolerance band (default 25%, matching the regression budget
in .github/workflows/ci.yml). Improvements never fail the gate; a run that
is faster by more than the band prints a hint to refresh the baseline so
the gate tightens over time. Benchmarks missing from the baseline (new
ones) or missing from the run (retired ones) warn but do not fail — new
entries are adopted with --update.

With --trajectory, the run is also appended to a rolling
memopt.bench-trajectory.v1 document ({sha, date, per-benchmark ns/iter} per
entry) before the gate evaluates, so even failing runs record their
timings. The perf-regression CI job carries that file across runs via the
actions cache and uploads it as the BENCH_trajectory artifact.

Exit codes: 0 ok, 1 regression, 2 usage/input error.
"""
import argparse
import datetime
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "bench" / "baselines" / "perf_baseline.json"


def load_run(path: Path) -> dict:
    with path.open() as f:
        doc = json.load(f)
    if doc.get("schema") != "memopt.bench.v1":
        sys.exit(f"error: {path} is not a memopt.bench.v1 document "
                 f"(schema={doc.get('schema')!r})")
    rows = doc.get("rows", [])
    if not rows:
        sys.exit(f"error: {path} has no benchmark rows")
    results = {}
    for row in rows:
        try:
            results[row["benchmark"]] = float(row["real_time_ns"])
        except (KeyError, TypeError, ValueError):
            sys.exit(f"error: malformed row in {path}: {row!r}")
    return results


def load_baseline(path: Path) -> dict:
    with path.open() as f:
        doc = json.load(f)
    return {name: float(ns) for name, ns in doc["benchmarks"].items()}


def update_baseline(path: Path, results: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": "memopt.perf_baseline.v1",
        "note": "per-iteration real_time_ns references for scripts/check_perf.py; "
                "refresh with: scripts/check_perf.py <BENCH_perf.json> --update",
        "benchmarks": {name: round(ns, 1) for name, ns in sorted(results.items())},
    }
    with path.open("w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"baseline updated: {path} ({len(results)} benchmarks)")


def append_trajectory(path: Path, sha: str, date: str, results: dict) -> None:
    doc = {"schema": "memopt.bench-trajectory.v1",
           "note": "per-benchmark real_time_ns history, one entry per CI run; "
                   "appended by scripts/check_perf.py --trajectory",
           "runs": []}
    if path.exists():
        try:
            with path.open() as f:
                existing = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            # A truncated cache restore must not wedge the gate forever;
            # start a fresh trajectory and say so.
            print(f"warning: discarding unreadable trajectory {path}: {err}",
                  file=sys.stderr)
            existing = None
        if existing is not None:
            if existing.get("schema") != "memopt.bench-trajectory.v1":
                sys.exit(f"error: {path} is not a memopt.bench-trajectory.v1 "
                         f"document (schema={existing.get('schema')!r})")
            doc = existing
    doc["runs"].append({
        "sha": sha,
        "date": date,
        "benchmarks": {name: round(ns, 1) for name, ns in sorted(results.items())},
    })
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"trajectory: appended run {sha[:12]} ({len(results)} benchmarks, "
          f"{len(doc['runs'])} total runs) to {path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("run", type=Path, help="BENCH_perf.json from a perf_micro run")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help=f"baseline file (default: {DEFAULT_BASELINE})")
    parser.add_argument("--tolerance-pct", type=float, default=25.0,
                        help="allowed slowdown before failing (default: 25)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run instead of gating")
    parser.add_argument("--trajectory", type=Path, default=None,
                        help="append this run to a memopt.bench-trajectory.v1 "
                             "history file before gating")
    parser.add_argument("--sha", default=os.environ.get("GITHUB_SHA", "unknown"),
                        help="commit sha recorded in the trajectory entry "
                             "(default: $GITHUB_SHA)")
    parser.add_argument("--date", default=None,
                        help="ISO-8601 date recorded in the trajectory entry "
                             "(default: now, UTC)")
    args = parser.parse_args()

    if not args.run.exists():
        print(f"error: run file not found: {args.run}", file=sys.stderr)
        return 2
    results = load_run(args.run)

    if args.trajectory is not None:
        date = args.date or datetime.datetime.now(datetime.timezone.utc) \
            .strftime("%Y-%m-%dT%H:%M:%SZ")
        append_trajectory(args.trajectory, args.sha, date, results)

    if args.update:
        update_baseline(args.baseline, results)
        return 0

    if not args.baseline.exists():
        print(f"error: baseline not found: {args.baseline} "
              "(create it with --update)", file=sys.stderr)
        return 2
    baseline = load_baseline(args.baseline)

    band = args.tolerance_pct / 100.0
    regressions = []
    print(f"{'benchmark':<34} {'baseline':>12} {'current':>12} {'delta':>8}  verdict")
    for name in sorted(set(baseline) | set(results)):
        if name not in results:
            print(f"{name:<34} {baseline[name]:>12.0f} {'-':>12} {'-':>8}  WARN (missing from run)")
            continue
        if name not in baseline:
            print(f"{name:<34} {'-':>12} {results[name]:>12.0f} {'-':>8}  WARN (new; adopt with --update)")
            continue
        ref, cur = baseline[name], results[name]
        delta = (cur - ref) / ref
        if delta > band:
            verdict = "FAIL (regression)"
            regressions.append((name, delta))
        elif delta < -band:
            verdict = "ok (faster; consider --update)"
        else:
            verdict = "ok"
        print(f"{name:<34} {ref:>12.0f} {cur:>12.0f} {delta:>+7.1%}  {verdict}")

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(f"\nPERF GATE: FAIL — {len(regressions)} benchmark(s) regressed beyond "
              f"{args.tolerance_pct:.0f}% (worst: {worst[0]} {worst[1]:+.1%})")
        return 1
    print(f"\nPERF GATE: ok — {len(results)} benchmarks within {args.tolerance_pct:.0f}% "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
