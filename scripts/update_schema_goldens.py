#!/usr/bin/env python3
"""Regenerate the S1 schema goldens (docs/schemas/*.v1.json).

The goldens freeze, per schema, the set of JSON keys its source files may
emit through JsonWriter member()/key() string literals. memopt_lint rule S1
diffs the keys actually emitted against these documents; a key added or
removed without updating the golden in the same change is a finding.

Workflow when a report schema deliberately changes:

    cmake --build build --target memopt_lint
    python3 scripts/update_schema_goldens.py --lint build/tools/memopt_lint
    git diff docs/schemas/   # review: every key change is intentional
    # commit the golden together with the writer change

The key sets come from the linter's own index (via a throwaway --cache
file), so this script can never disagree with what rule S1 checks.
Granularity is per source file: a file that writes several documents (e.g.
the lint driver, which renders both memopt.lint.v1 and SARIF) freezes all
its keys under one golden.
"""
import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

# schema id -> the files whose JsonWriter keys it freezes.
SCHEMAS = {
    "memopt.report.v1": {
        "notes": "The memopt_cli --json envelope and every section writer it "
                 "delegates to (flow/study/cache/compress/encoding/energy/"
                 "metrics). The fault command shares this envelope; its result "
                 "body is frozen separately as memopt.fault.v1.",
        "sources": [
            "examples/memopt_cli.cpp",
            "src/cache/mcache.cpp",
            "src/compress/memsys.cpp",
            "src/core/flow.cpp",
            "src/core/study.cpp",
            "src/encoding/search.cpp",
            "src/energy/report.cpp",
            "src/support/metrics.cpp",
        ],
    },
    "memopt.bench.v1": {
        "notes": "The BENCH_*.json export envelope. Per-row metric names are "
                 "dynamic (add_row key-value pairs) and are deliberately not "
                 "frozen; only the envelope keys are.",
        "sources": ["bench/bench_util.cpp"],
    },
    "memopt.fault.v1": {
        "notes": "The fault-campaign result body (campaign counters and "
                 "rates). The surrounding CLI envelope is frozen by "
                 "memopt.report.v1.",
        "sources": ["src/fault/campaign.cpp"],
    },
    "memopt.lint.v1": {
        "notes": "The lint report writers: the memopt.lint.v1 document and "
                 "the SARIF 2.1.0 rendering live in the same file, so both "
                 "key sets are frozen here.",
        "sources": ["src/tools/lint/lint.cpp"],
    },
    "memopt.ckpt.v1": {
        "notes": "The checkpoint container itself is binary (see "
                 "support/durable/checkpoint.hpp); what this golden freezes "
                 "is the embedded per-record report document written by the "
                 "study engine.",
        "sources": ["src/core/study.cpp"],
    },
}


def emitted_keys(lint_bin: str, root: pathlib.Path) -> dict[str, set[str]]:
    """file -> JSON keys it emits, read out of the linter's index cache."""
    with tempfile.NamedTemporaryFile(suffix=".lintcache") as cache:
        subprocess.run(
            [lint_bin, "--root", str(root), "--cache", cache.name],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            check=False,  # exit 1 just means findings; the cache still writes
        )
        text = pathlib.Path(cache.name).read_text(encoding="utf-8")
    keys: dict[str, set[str]] = {}
    current = None
    for line in text.splitlines():
        if line.startswith("file "):
            current = line[len("file "):]
        elif line.startswith("jk ") and current is not None:
            _, _line, key = line.split(" ", 2)
            keys.setdefault(current, set()).add(key)
    if not keys:
        sys.exit("update_schema_goldens: no JSON keys found — "
                 "is the lint binary current?")
    return keys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--lint", default="build/tools/memopt_lint",
                    help="memopt_lint binary (default: build/tools/memopt_lint)")
    ap.add_argument("--root", default=".", help="repo root (default: .)")
    ap.add_argument("--check", action="store_true",
                    help="verify goldens are current; exit 1 on drift")
    args = ap.parse_args()

    root = pathlib.Path(args.root)
    out_dir = root / "docs" / "schemas"
    out_dir.mkdir(parents=True, exist_ok=True)
    per_file = emitted_keys(args.lint, root)

    drift = False
    for schema_id, spec in SCHEMAS.items():
        keys: set[str] = set()
        for source in spec["sources"]:
            if source not in per_file:
                sys.exit(f"update_schema_goldens: source {source} emits no JSON "
                         f"keys (moved or renamed?); update SCHEMAS in this script")
            keys |= per_file[source]
        doc = {
            "schema": "memopt.schema-freeze.v1",
            "id": schema_id,
            "notes": spec["notes"],
            "sources": sorted(spec["sources"]),
            "keys": sorted(keys),
        }
        rendered = json.dumps(doc, indent=2) + "\n"
        path = out_dir / f"{schema_id}.json"
        if args.check:
            if not path.exists() or path.read_text(encoding="utf-8") != rendered:
                print(f"update_schema_goldens: {path} is stale", file=sys.stderr)
                drift = True
        else:
            path.write_text(rendered, encoding="utf-8")
            print(f"wrote {path} ({len(keys)} keys)")
    return 1 if drift else 0


if __name__ == "__main__":
    sys.exit(main())
