#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, run every
# experiment, and collect the outputs (plus CSV figure data) under
# reproduction/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p reproduction/figures
ctest --test-dir build --output-on-failure 2>&1 | tee reproduction/test_output.txt

export MEMOPT_CSV_DIR="$PWD/reproduction/figures"
for b in build/bench/*; do "$b"; done 2>&1 | tee reproduction/bench_output.txt

echo
echo "== reproduction summary =="
grep -E "tests passed" reproduction/test_output.txt || true
grep -c "SHAPE ok" reproduction/bench_output.txt | xargs -I{} echo "{} experiments with SHAPE ok"
echo "outputs in reproduction/ (figure CSVs in reproduction/figures/)"
