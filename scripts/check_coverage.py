#!/usr/bin/env python3
"""Coverage gate: check a gcovr Cobertura report against the checked-in floor.

Usage:
    python3 scripts/check_coverage.py <coverage.xml>            # gate (CI)
    python3 scripts/check_coverage.py <coverage.xml> --update   # refresh floor
    python3 scripts/check_coverage.py <coverage.xml> --floor <file> \
        --margin-pct 2

The input is the Cobertura XML document the coverage CI job produces with
`gcovr --filter 'src/' --xml-pretty --output coverage.xml`; its root
<coverage> element carries lines-covered / lines-valid totals for src/.
The floor (scripts/coverage_floor.json) stores a single line-coverage
percentage the tree must not drop below.

The gate FAILS when measured line coverage is below the floor. Rising
coverage never fails; a run that clears the floor by more than the margin
prints a hint to refresh the floor so the gate tightens over time.
--update rewrites the floor to the measured value minus the margin
(default 2 points), which absorbs run-to-run jitter from timing-dependent
branches without letting real coverage losses through.

Exit codes: 0 ok, 1 below floor, 2 usage/input error.
"""
import argparse
import json
import sys
import xml.etree.ElementTree as ET
from pathlib import Path

DEFAULT_FLOOR = Path(__file__).resolve().parent / "coverage_floor.json"


def load_report(path: Path) -> tuple[int, int]:
    try:
        root = ET.parse(path).getroot()
    except ET.ParseError as err:
        sys.exit(f"error: {path} is not well-formed XML: {err}")
    if root.tag != "coverage":
        sys.exit(f"error: {path} is not a Cobertura document "
                 f"(root element <{root.tag}>)")
    try:
        covered = int(root.attrib["lines-covered"])
        valid = int(root.attrib["lines-valid"])
    except (KeyError, ValueError):
        # Older gcovr emits only the rate; synthesize counts from it.
        try:
            rate = float(root.attrib["line-rate"])
        except (KeyError, ValueError):
            sys.exit(f"error: {path} has neither lines-covered/lines-valid "
                     "nor line-rate on <coverage>")
        covered, valid = round(rate * 100000), 100000
    if valid <= 0:
        sys.exit(f"error: {path} reports no coverable lines")
    return covered, valid


def load_floor(path: Path) -> float:
    with path.open() as f:
        doc = json.load(f)
    if doc.get("schema") != "memopt.coverage_floor.v1":
        sys.exit(f"error: {path} is not a memopt.coverage_floor.v1 document "
                 f"(schema={doc.get('schema')!r})")
    return float(doc["line_coverage_pct"])


def update_floor(path: Path, pct: float, margin: float) -> None:
    floor = max(0.0, round(pct - margin, 1))
    doc = {
        "schema": "memopt.coverage_floor.v1",
        "note": "minimum line coverage for src/ enforced by "
                "scripts/check_coverage.py; refresh with: "
                "scripts/check_coverage.py <coverage.xml> --update",
        "line_coverage_pct": floor,
    }
    with path.open("w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"floor updated: {path} ({floor:.1f}% = measured {pct:.1f}% "
          f"- {margin:.1f} margin)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("report", type=Path,
                        help="Cobertura coverage.xml from gcovr")
    parser.add_argument("--floor", type=Path, default=DEFAULT_FLOOR,
                        help=f"floor file (default: {DEFAULT_FLOOR})")
    parser.add_argument("--margin-pct", type=float, default=2.0,
                        help="slack subtracted from the measurement on "
                             "--update (default: 2)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the floor from this report instead of gating")
    args = parser.parse_args()

    if not args.report.exists():
        print(f"error: report not found: {args.report}", file=sys.stderr)
        return 2
    covered, valid = load_report(args.report)
    pct = 100.0 * covered / valid

    if args.update:
        update_floor(args.floor, pct, args.margin_pct)
        return 0

    if not args.floor.exists():
        print(f"error: floor not found: {args.floor} "
              "(create it with --update)", file=sys.stderr)
        return 2
    floor = load_floor(args.floor)

    print(f"line coverage (src/): {covered}/{valid} = {pct:.1f}% "
          f"(floor {floor:.1f}%)")
    if pct < floor:
        print(f"\nCOVERAGE GATE: FAIL — line coverage {pct:.1f}% is below the "
              f"floor {floor:.1f}%")
        return 1
    if pct > floor + 2.0 * args.margin_pct:
        print("hint: coverage well above the floor; consider tightening it "
              "with --update")
    print(f"\nCOVERAGE GATE: ok — {pct:.1f}% >= {floor:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
