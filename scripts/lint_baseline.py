#!/usr/bin/env python3
"""Lint-baseline gate: check a memopt_lint JSON report, or refresh the baseline.

Usage:
    python3 scripts/lint_baseline.py <memopt_lint.json>            # gate (CI)
    python3 scripts/lint_baseline.py <memopt_lint.json> --update   # refresh baseline
    python3 scripts/lint_baseline.py <memopt_lint.json> --baseline <file>

The input is the memopt.lint.v1 document from
`memopt_lint --root . --baseline tools/lint_baseline.txt --json <file> src bench tests`;
each finding carries {file, line, rule, message, baselined}.

Gate mode fails (exit 1) when the report has active (unbaselined) findings —
fix the code or add an inline `// memopt-lint: <rule> -- rationale`
annotation — or when the baseline has stale entries that no longer match
anything (prune them, or rerun with --update). The goal state of
tools/lint_baseline.txt is empty: --update exists for triaged legacy debt,
not for waving new findings through.

--update rewrites the baseline with every finding in the report (sorted
file:line:rule entries), preserving nothing: the report is the truth.

Exit codes: 0 ok, 1 findings/stale entries, 2 usage/input error.
"""
import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "tools" / "lint_baseline.txt"

BASELINE_HEADER = """\
# memopt_lint suppression baseline.
#
# One `file:line:rule` entry per line suppresses exactly one matching
# finding; `#` comments and blank lines are ignored. Entries that match
# nothing are reported as stale and fail the CI gate — prune them.
#
# Refresh after triaging legacy findings:
#     build/tools/memopt_lint --root . --json memopt_lint.json src bench tests
#     python3 scripts/lint_baseline.py memopt_lint.json --update
#
# The goal state of this file is what you see: empty. New code must lint
# clean or carry an inline `// memopt-lint: <rule> -- rationale` annotation.
"""


def load_report(path: Path) -> dict:
    with path.open() as f:
        doc = json.load(f)
    if doc.get("schema") != "memopt.lint.v1":
        sys.exit(f"error: {path} is not a memopt.lint.v1 document "
                 f"(schema={doc.get('schema')!r})")
    return doc


def update_baseline(path: Path, doc: dict) -> None:
    entries = sorted(
        (f["file"], int(f["line"]), f["rule"]) for f in doc.get("findings", [])
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as f:
        f.write(BASELINE_HEADER)
        if entries:
            f.write("\n")
        for file, line, rule in entries:
            f.write(f"{file}:{line}:{rule}\n")
    print(f"baseline updated: {path} ({len(entries)} entries)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("report", type=Path,
                        help="memopt.lint.v1 JSON from memopt_lint --json")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help=f"baseline file (default: {DEFAULT_BASELINE})")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this report instead of gating")
    args = parser.parse_args()

    if not args.report.exists():
        print(f"error: report file not found: {args.report}", file=sys.stderr)
        return 2
    doc = load_report(args.report)

    if args.update:
        update_baseline(args.baseline, doc)
        return 0

    active = [f for f in doc.get("findings", []) if not f.get("baselined")]
    stale = doc.get("stale_baseline", [])
    files = doc.get("files_scanned", 0)

    for f in active:
        print(f"{f['file']}:{f['line']}: {f['rule']}: {f['message']}")
    for entry in stale:
        print(f"stale baseline entry (matches nothing, prune it): {entry}")

    if active or stale:
        print(f"\nLINT GATE: FAIL — {len(active)} active finding(s), "
              f"{len(stale)} stale baseline entr(y/ies) over {files} files")
        return 1
    baselined = int(doc.get("summary", {}).get("baselined", 0))
    print(f"LINT GATE: ok — {files} files clean "
          f"({baselined} finding(s) suppressed by the baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
