#!/usr/bin/env python3
"""Structural validator for memopt_lint --sarif output (SARIF 2.1.0).

Usage:
    python3 scripts/check_sarif.py <report.sarif>

Checks the invariants the GitHub code-scanning upload depends on, without
needing the (networked) official JSON schema:

  * top level: version == "2.1.0", a $schema URI, exactly one run
  * the run: tool.driver with name/version and a rules array whose entries
    carry id + shortDescription.text, unique ids
  * every result: ruleId present in the rules array, ruleIndex pointing at
    it, a level, message.text, and >= 1 location with
    physicalLocation.artifactLocation.uri (relative, no scheme) and a
    positive region.startLine
  * suppressions, when present, use kind == "external" (the baseline
    representation) so code scanning shows them as dismissed

Exit codes: 0 valid, 1 structural violation, 2 usage/IO error.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_sarif: FAIL: {msg}")
    sys.exit(1)


def require(cond: bool, msg: str) -> None:
    if not cond:
        fail(msg)


def main() -> None:
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    try:
        with open(sys.argv[1], encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_sarif: cannot parse {sys.argv[1]}: {exc}")
        sys.exit(2)

    require(doc.get("version") == "2.1.0", f"version is {doc.get('version')!r}, want '2.1.0'")
    require(isinstance(doc.get("$schema"), str) and "sarif" in doc["$schema"].lower(),
            "$schema missing or not a SARIF schema URI")
    runs = doc.get("runs")
    require(isinstance(runs, list) and len(runs) == 1, "want exactly one run")
    run = runs[0]

    driver = run.get("tool", {}).get("driver", {})
    require(driver.get("name") == "memopt_lint", "tool.driver.name != memopt_lint")
    require(isinstance(driver.get("version"), str), "tool.driver.version missing")
    rules = driver.get("rules")
    require(isinstance(rules, list) and rules, "tool.driver.rules missing or empty")
    rule_ids = []
    for rule in rules:
        require(isinstance(rule.get("id"), str) and rule["id"], "rule without id")
        require(isinstance(rule.get("shortDescription", {}).get("text"), str),
                f"rule {rule.get('id')}: shortDescription.text missing")
        rule_ids.append(rule["id"])
    require(len(set(rule_ids)) == len(rule_ids), "duplicate rule ids")

    results = run.get("results")
    require(isinstance(results, list), "results array missing")
    suppressed = 0
    for i, result in enumerate(results):
        where = f"results[{i}]"
        rule_id = result.get("ruleId")
        require(rule_id in rule_ids, f"{where}: ruleId {rule_id!r} not in driver.rules")
        index = result.get("ruleIndex")
        require(isinstance(index, int) and 0 <= index < len(rule_ids)
                and rule_ids[index] == rule_id,
                f"{where}: ruleIndex does not point at ruleId")
        require(result.get("level") in ("error", "warning", "note"),
                f"{where}: bad level {result.get('level')!r}")
        require(isinstance(result.get("message", {}).get("text"), str)
                and result["message"]["text"],
                f"{where}: message.text missing")
        locations = result.get("locations")
        require(isinstance(locations, list) and locations, f"{where}: no locations")
        physical = locations[0].get("physicalLocation", {})
        uri = physical.get("artifactLocation", {}).get("uri")
        require(isinstance(uri, str) and uri and "://" not in uri and not uri.startswith("/"),
                f"{where}: artifactLocation.uri must be a relative path, got {uri!r}")
        start = physical.get("region", {}).get("startLine")
        require(isinstance(start, int) and start >= 1, f"{where}: region.startLine must be >= 1")
        if "suppressions" in result:
            sups = result["suppressions"]
            require(isinstance(sups, list) and sups
                    and all(s.get("kind") == "external" for s in sups),
                    f"{where}: suppressions must be external")
            suppressed += 1

    print(f"check_sarif: ok — {len(results)} result(s), {len(rule_ids)} rule(s), "
          f"{suppressed} suppressed")


if __name__ == "__main__":
    main()
