#!/usr/bin/env python3
"""Plot the figure-data CSVs exported by the benches.

Usage:
    scripts/reproduce.sh                     # writes reproduction/figures/*.csv
    python3 scripts/plot_figures.py [dir]    # writes <dir>/*.png

Degrades gracefully: without matplotlib it prints the series as text.
"""
import csv
import sys
from pathlib import Path


def load(path: Path):
    with path.open() as f:
        rows = list(csv.reader(f))
    header, data = rows[0], rows[1:]
    series = {name: [] for name in header}
    for row in data:
        for name, value in zip(header, row):
            series[name].append(float(value))
    return header, series


def main() -> int:
    directory = Path(sys.argv[1] if len(sys.argv) > 1 else "reproduction/figures")
    csvs = sorted(directory.glob("*.csv"))
    if not csvs:
        print(f"no CSV files in {directory}; run scripts/reproduce.sh with "
              "MEMOPT_CSV_DIR set (reproduce.sh does this for you)")
        return 1

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
        have_mpl = True
    except ImportError:
        have_mpl = False
        print("matplotlib not available; printing series instead\n")

    for path in csvs:
        header, series = load(path)
        x_name, y_names = header[0], header[1:]
        if have_mpl:
            fig, ax = plt.subplots(figsize=(6, 4))
            for y in y_names:
                ax.plot(series[x_name], series[y], marker="o", label=y)
            ax.set_xlabel(x_name)
            ax.set_title(path.stem)
            ax.grid(True, alpha=0.3)
            ax.legend()
            out = path.with_suffix(".png")
            fig.savefig(out, dpi=150, bbox_inches="tight")
            print(f"wrote {out}")
        else:
            print(f"-- {path.stem} --")
            for y in y_names:
                pairs = ", ".join(f"{int(a)}:{b:.1f}" for a, b in zip(series[x_name], series[y]))
                print(f"  {y}: {pairs}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
